#include "hw/bits.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <type_traits>

#include "hw/haar_datapath.hpp"
#include "hw/widths.hpp"
#include "wavelet/haar.hpp"

namespace swc::hw::bits {
namespace {

// ---------------------------------------------------------------------------
// Width propagation: the type system must provision exactly what synthesis
// would.
// ---------------------------------------------------------------------------

TEST(ApUint, ArithmeticPropagatesWidths) {
  static_assert(decltype(ap_uint<8>{} + ap_uint<8>{})::width == 9);
  static_assert(decltype(ap_uint<8>{} + ap_uint<4>{})::width == 9);
  static_assert(decltype(ap_uint<8>{} - ap_uint<8>{})::width == 9);
  static_assert(decltype(ap_uint<8>{} * ap_uint<4>{})::width == 12);
  static_assert(decltype(ap_uint<8>{} & ap_uint<15>{})::width == 15);
  static_assert(decltype(ap_uint<8>{} | ap_uint<3>{})::width == 8);
  static_assert(decltype(ap_uint<8>{}.shl<7>())::width == 15);
  static_assert(decltype(ap_uint<8>{}.shl_bounded<7>(0))::width == 15);
  static_assert(decltype(ap_uint<9>{}.shr(3))::width == 9);  // shr never narrows

  EXPECT_EQ((ap_uint<8>(200u) + ap_uint<8>(200u)).value(), 400u);
  EXPECT_EQ((ap_uint<4>(3u) * ap_uint<4>(15u)).value(), 45u);
  EXPECT_EQ(ap_uint<8>(0x81u).shl_bounded<7>(7).value(), 0x81u << 7);
}

TEST(ApUint, SubtractionIsSignedAtFullPrecision) {
  const auto d = ap_uint<8>(0u) - ap_uint<8>(255u);
  static_assert(std::is_same_v<decltype(d), const ap_int<9>>);
  EXPECT_EQ(d.value(), -255);
  EXPECT_EQ(d.wrap<8>().value(), 1u);  // two's-complement register wrap
}

TEST(ApInt, ArithmeticPropagatesWidths) {
  static_assert(decltype(ap_int<9>{} + ap_int<9>{})::width == 10);
  static_assert(decltype(ap_int<9>{} - ap_int<4>{})::width == 10);
  static_assert(ap_int<9>::max_value == 255 && ap_int<9>::min_value == -256);
  EXPECT_EQ(ap_int<9>(-256).asr(1).value(), -128);
  EXPECT_EQ(ap_int<9>(-1).asr(4).value(), -1);  // sign-preserving shift
}

TEST(ApUint, TruncKeepsValueWrapReduces) {
  const ap_uint<9> v(0x1A5u);
  EXPECT_EQ(v.wrap<8>().value(), 0xA5u);
  EXPECT_EQ(ap_uint<9>(0x7Fu).trunc<8>().value(), 0x7Fu);
  EXPECT_EQ(ap_int<9>(-3).wrap<8>().value(), 0xFDu);
  EXPECT_EQ(ap_uint<8>(0xFFu).as_signed().value(), -1);
  EXPECT_EQ(ap_uint<8>(0x7Fu).as_signed().value(), 127);
}

TEST(ApUint, MaskLsbMatchesWidth) {
  EXPECT_EQ(mask_lsb<8>(0).value(), 0x00u);
  EXPECT_EQ(mask_lsb<8>(3).value(), 0x07u);
  EXPECT_EQ(mask_lsb<8>(8).value(), 0xFFu);
  EXPECT_EQ(mask_lsb<16>(13).value(), 0x1FFFu);
}

TEST(ApUint, CompoundBitwiseRespectsWidths) {
  ap_uint<16> acc(0u);
  acc |= ap_uint<15>(0x7FFFu);
  EXPECT_EQ(acc.value(), 0x7FFFu);
  // &= with a narrower mask register touches only that register's bit span:
  // bits above the mask's width are preserved, exactly like a partial-bus AND.
  acc &= mask_lsb<8>(3);
  EXPECT_EQ(acc.value(), 0x7F07u);
}

// ---------------------------------------------------------------------------
// Negative compile tests: narrowing must not be expressible implicitly, and
// trunc/wrap/shl bounds must be enforced by the type system. Each probe is a
// static_assert, so a regression breaks the build rather than a runtime test.
// ---------------------------------------------------------------------------

static_assert(std::is_convertible_v<ap_uint<8>, ap_uint<9>>,
              "widening must stay implicit");
static_assert(!std::is_convertible_v<ap_uint<9>, ap_uint<8>>,
              "implicit narrowing must not compile");
static_assert(!std::is_constructible_v<ap_uint<8>, ap_uint<9>>,
              "explicit narrowing construction must not compile either");
static_assert(!std::is_assignable_v<ap_uint<8>&, ap_uint<9>>,
              "narrowing assignment must not compile");
static_assert(!std::is_convertible_v<ap_int<9>, ap_int<8>>);
static_assert(!std::is_constructible_v<ap_int<8>, ap_int<9>>);
static_assert(!std::is_convertible_v<int, ap_uint<8>>,
              "raw integers must convert only explicitly");

template <typename T>
concept CanTruncTo4 = requires(T v) { v.template trunc<4>(); };
template <typename T>
concept CanWrapTo4 = requires(T v) { v.template wrap<4>(); };
template <typename T>
concept CanShlBounded60 = requires(T v) { v.template shl_bounded<60>(0); };

static_assert(CanTruncTo4<ap_uint<8>> && CanWrapTo4<ap_uint<8>>);
static_assert(!CanTruncTo4<ap_uint<3>>, "trunc must not widen");
static_assert(!CanWrapTo4<ap_uint<3>>, "wrap must not widen");
static_assert(!CanShlBounded60<ap_uint<8>>,
              "a bounded shift past 64 result bits must not compile");

// ---------------------------------------------------------------------------
// The width-proven Haar datapath is bit-identical to the wavelet reference
// over the entire 16-bit input space (the exhaustive ground truth behind the
// static_assert spot checks in iwt_module.cpp).
// ---------------------------------------------------------------------------

TEST(HaarDatapath, ForwardMatchesReferenceExhaustively) {
  for (int x0 = 0; x0 < 256; ++x0) {
    for (int x1 = 0; x1 < 256; ++x1) {
      const auto ref = wavelet::haar_forward_u8(static_cast<std::uint8_t>(x0),
                                                static_cast<std::uint8_t>(x1));
      const HaarPairReg got = haar_forward(widths::PixelReg(static_cast<unsigned>(x0)),
                                           widths::PixelReg(static_cast<unsigned>(x1)));
      ASSERT_EQ(got.l.to_u8(), ref.l) << "x0=" << x0 << " x1=" << x1;
      ASSERT_EQ(got.h.to_u8(), ref.h) << "x0=" << x0 << " x1=" << x1;
    }
  }
}

TEST(HaarDatapath, InverseRoundTripsExhaustively) {
  for (int l = 0; l < 256; ++l) {
    for (int h = 0; h < 256; ++h) {
      const auto ref = wavelet::haar_inverse_u8(static_cast<std::uint8_t>(l),
                                                static_cast<std::uint8_t>(h));
      const auto [x0, x1] = haar_inverse(widths::CoeffReg(static_cast<unsigned>(l)),
                                         widths::CoeffReg(static_cast<unsigned>(h)));
      ASSERT_EQ(x0.to_u8(), ref.first) << "l=" << l << " h=" << h;
      ASSERT_EQ(x1.to_u8(), ref.second) << "l=" << l << " h=" << h;
      // Forward(inverse) is the identity in Z/256Z.
      const HaarPairReg fwd = haar_forward(x0, x1);
      ASSERT_EQ(fwd.l.to_u8(), static_cast<std::uint8_t>(l));
      ASSERT_EQ(fwd.h.to_u8(), static_cast<std::uint8_t>(h));
    }
  }
}

TEST(HaarDatapath, TwoDimensionalBlockMatchesReference) {
  // Deterministic LCG sweep over 2x2 blocks (full 32-bit space is too big).
  std::uint32_t s = 0x12345678u;
  for (int i = 0; i < 20000; ++i) {
    s = s * 1664525u + 1013904223u;
    const auto x00 = static_cast<std::uint8_t>(s >> 24);
    const auto x01 = static_cast<std::uint8_t>(s >> 16);
    const auto x10 = static_cast<std::uint8_t>(s >> 8);
    const auto x11 = static_cast<std::uint8_t>(s);
    const auto ref = wavelet::haar2d_forward_u8(x00, x01, x10, x11);
    const HaarBlockReg got =
        haar2d_forward(widths::PixelReg(x00), widths::PixelReg(x01), widths::PixelReg(x10),
                       widths::PixelReg(x11));
    ASSERT_EQ(got.ll.to_u8(), ref.ll);
    ASSERT_EQ(got.lh.to_u8(), ref.lh);
    ASSERT_EQ(got.hl.to_u8(), ref.hl);
    ASSERT_EQ(got.hh.to_u8(), ref.hh);
    const PixelBlockReg back = haar2d_inverse(got);
    ASSERT_EQ(back.x00.to_u8(), x00);
    ASSERT_EQ(back.x01.to_u8(), x01);
    ASSERT_EQ(back.x10.to_u8(), x10);
    ASSERT_EQ(back.x11.to_u8(), x11);
  }
}

// ---------------------------------------------------------------------------
// The paper-width table is wired to the datapath types (tentpole invariants).
// ---------------------------------------------------------------------------

TEST(Widths, PaperTableMatchesDatapathTypes) {
  static_assert(widths::PixelReg::width == widths::kPixelBits);
  static_assert(widths::CoeffReg::width == widths::kCoeffBits);
  static_assert(decltype(widths::PixelReg{} + widths::PixelReg{})::width ==
                widths::kHaarAdderBits);
  static_assert(widths::NBitsField::max_value >= widths::kBitMax);
  static_assert(decltype(widths::CoeffReg{}.shl_bounded<widths::kBitMax - 1>(0))::width ==
                widths::kPackInsertBits);
  static_assert(widths::PackAccReg::width >= widths::kPackInsertBits);
  static_assert(widths::UnpackRemReg::width >= widths::kPackInsertBits);
  SUCCEED();
}

}  // namespace
}  // namespace swc::hw::bits

#include "hw/clocking.hpp"

#include <gtest/gtest.h>

#include "hw/compressed_pipeline.hpp"
#include "image/synthetic.hpp"

namespace swc::hw {
namespace {

// ---------------------------------------------------------------------------
// Registry semantics: only a read in the same (cycle, phase) as the last
// write is a hazard; cross-phase and cross-cycle traffic is clean.
// ---------------------------------------------------------------------------

TEST(ClockedRegistry, DetectsSamePhaseReadAfterWrite) {
  ClockedRegistry reg;
  Signal<int> r("block.reg");
  r.attach(&reg);

  reg.begin_cycle();  // cycle 1, Phase::Emit
  r.write() = 42;
  EXPECT_EQ(r.read(), 42);  // deliberate same-phase RAW — the RTL race

  ASSERT_EQ(reg.hazards().size(), 1u);
  const HazardRecord& hz = reg.hazards().front();
  EXPECT_EQ(hz.signal, "block.reg");
  EXPECT_EQ(hz.cycle, 1u);
  EXPECT_EQ(hz.phase, Phase::Emit);
  EXPECT_FALSE(reg.clean());
}

TEST(ClockedRegistry, CrossPhaseAndCrossCycleReadsAreClean) {
  ClockedRegistry reg;
  Signal<int> r("block.reg");
  r.attach(&reg);

  reg.begin_cycle();
  r.write() = 1;                      // Emit write...
  reg.set_phase(Phase::Capture);
  EXPECT_EQ(r.read(), 1);             // ...Capture read: legal register timing

  reg.begin_cycle();
  EXPECT_EQ(r.read(), 1);             // next cycle: also legal
  EXPECT_TRUE(reg.clean());

  reg.set_phase(Phase::Capture);
  r.write() = 2;
  EXPECT_EQ(r.read(), 2);             // Capture-phase RAW is a hazard too
  ASSERT_EQ(reg.hazards().size(), 1u);
  EXPECT_EQ(reg.hazards().front().phase, Phase::Capture);
  EXPECT_EQ(phase_name(Phase::Capture), std::string("capture"));
}

TEST(ClockedRegistry, TracksDistinctSignalsIndependently) {
  ClockedRegistry reg;
  Signal<int> a("a");
  Signal<int> b("b");
  a.attach(&reg);
  b.attach(&reg);

  reg.begin_cycle();
  a.write() = 1;
  EXPECT_EQ(b.read(), 0);  // read of a *different* signal: no hazard
  EXPECT_TRUE(reg.clean());
  EXPECT_EQ(reg.reads(), 1u);
  EXPECT_EQ(reg.writes(), 1u);
}

TEST(Signal, DetachedSignalIsPlainRegister) {
  Signal<int> r("free");
  r.write() = 5;
  EXPECT_EQ(r.read(), 5);
  EXPECT_EQ(std::string(r.name()), "free");
}

// ---------------------------------------------------------------------------
// The full compressed pipeline, instrumented, is hazard-free: the two-phase
// schedule (Emit: pack buffered column + reconstruct; Capture: shift window
// + feed IWT) never reads a signal in the phase that wrote it.
// ---------------------------------------------------------------------------

TEST(CompressedPipelineHazards, FullRunIsHazardClean) {
  const std::size_t w = 32, h = 24, n = 4;
  core::EngineConfig config;
  config.spec = {w, h, n};
  config.codec.threshold = 0;

  CompressedPipeline pipe(config);
  ClockedRegistry reg;
  pipe.attach_hazard_registry(&reg);

  const auto img = image::make_natural_image(w, h, {.seed = 99});
  std::size_t windows = 0;
  for (const std::uint8_t px : img.pixels()) {
    if (pipe.step(px)) ++windows;
  }

  EXPECT_EQ(windows, (w - n + 1) * (h - n + 1));
  EXPECT_EQ(reg.cycle(), w * h);
  // The instrumentation was demonstrably live...
  EXPECT_GT(reg.reads(), 0u);
  EXPECT_GT(reg.writes(), 0u);
  // ...and the schedule is free of same-phase read-after-write.
  EXPECT_TRUE(reg.clean()) << reg.hazards().size() << " hazards; first: "
                           << (reg.hazards().empty() ? "-" : reg.hazards().front().signal);
}

TEST(CompressedPipelineHazards, AttachingDoesNotChangeOutputs) {
  const std::size_t w = 16, h = 16, n = 4;
  core::EngineConfig config;
  config.spec = {w, h, n};
  config.codec.threshold = 0;

  CompressedPipeline plain(config);
  CompressedPipeline instrumented(config);
  ClockedRegistry reg;
  instrumented.attach_hazard_registry(&reg);

  const auto img = image::make_natural_image(w, h, {.seed = 7});
  for (const std::uint8_t px : img.pixels()) {
    const bool a = plain.step(px);
    const bool b = instrumented.step(px);
    ASSERT_EQ(a, b);
    if (a) {
      for (std::size_t y = 0; y < n; ++y) {
        for (std::size_t x = 0; x < n; ++x) {
          ASSERT_EQ(plain.window().at(x, y), instrumented.window().at(x, y));
        }
      }
    }
  }
}

}  // namespace
}  // namespace swc::hw

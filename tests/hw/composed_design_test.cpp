// ComposedDesign: K compressed pipelines on one shared clock. The hazard
// analyzer must stay clean across the whole composed design (per-instance
// scopes keep identically named signals distinct), each member must behave
// exactly like a standalone pipeline, and the aggregated MemoryUnit port
// counters must report the shared-interconnect traffic the planner models.

#include "hw/composed_design.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "image/synthetic.hpp"

namespace swc::hw {
namespace {

PipelineSpec spec_of(std::size_t width, std::size_t height, std::size_t window) {
  PipelineSpec spec;
  spec.geometry = {width, height, window};
  return spec;
}

TEST(ComposedDesign, TwoPipelinesStayHazardCleanOverAFrame) {
  const std::size_t size = 32, window = 8;
  ComposedDesign design({spec_of(size, size, window), spec_of(size, size, window)});
  ASSERT_EQ(design.size(), 2u);

  const auto img_a = image::make_natural_image(size, size, {.seed = 11});
  const auto img_b = image::make_natural_image(size, size, {.seed = 23});
  std::size_t valid = 0;
  for (std::size_t i = 0; i < img_a.pixels().size(); ++i) {
    valid += design.step({img_a.pixels()[i], img_b.pixels()[i]});
  }

  EXPECT_TRUE(design.clean()) << design.hazards().hazards().size() << " hazards";
  EXPECT_EQ(design.cycles(), size * size);  // one shared clock, one pixel each
  EXPECT_GT(valid, 0u);
  // Both members see the same geometry, so they emit the same window count —
  // and exactly what a standalone pipeline emits.
  EXPECT_EQ(design.pipeline(0).windows_emitted(), design.pipeline(1).windows_emitted());
  CompressedPipeline alone(spec_of(size, size, window).to_engine());
  for (const std::uint8_t px : img_a.pixels()) alone.step(px);
  EXPECT_EQ(design.pipeline(0).windows_emitted(), alone.windows_emitted());
}

TEST(ComposedDesign, HeterogeneousMembersShareTheClock) {
  const std::size_t size = 32;
  ComposedDesign design({spec_of(size, size, 8), spec_of(size, size, 16)});
  const auto img = image::make_natural_image(size, size, {.seed = 7});
  for (const std::uint8_t px : img.pixels()) {
    design.step({px, px});
  }
  EXPECT_TRUE(design.clean());
  // Larger windows emit fewer valid positions under the same clock budget.
  EXPECT_GT(design.pipeline(0).windows_emitted(), design.pipeline(1).windows_emitted());
}

TEST(ComposedDesign, PortCountersAggregateAcrossMembers) {
  const std::size_t size = 32, window = 8;
  ComposedDesign design({spec_of(size, size, window), spec_of(size, size, window)});
  const auto img = image::make_natural_image(size, size, {.seed = 5});
  for (const std::uint8_t px : img.pixels()) design.step({px, px});

  EXPECT_GT(design.total_port_writes(), 0u);
  EXPECT_GT(design.total_port_reads(), 0u);
  EXPECT_EQ(design.total_port_writes(),
            design.pipeline(0).memory().port_writes() + design.pipeline(1).memory().port_writes());
  EXPECT_EQ(design.total_port_reads(),
            design.pipeline(0).memory().port_reads() + design.pipeline(1).memory().port_reads());
  // Identical specs fed identical pixels move identical traffic: the
  // composed total is exactly twice one member's.
  EXPECT_EQ(design.total_port_writes(), 2 * design.pipeline(0).memory().port_writes());
}

TEST(ComposedDesign, StepRejectsWrongPixelFanIn) {
  ComposedDesign design({spec_of(32, 32, 8), spec_of(32, 32, 8)});
  EXPECT_THROW(design.step({1}), std::invalid_argument);
  EXPECT_THROW(design.step({1, 2, 3}), std::invalid_argument);
}

}  // namespace
}  // namespace swc::hw

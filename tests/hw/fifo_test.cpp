#include "hw/fifo.hpp"

#include <gtest/gtest.h>

namespace swc::hw {
namespace {

TEST(Fifo, PreservesOrder) {
  Fifo<int> f;
  for (int i = 0; i < 10; ++i) f.push(i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(f.pop(), i);
  EXPECT_TRUE(f.empty());
}

TEST(Fifo, UnderflowIsRecordedNotThrown) {
  Fifo<int> f;
  EXPECT_FALSE(f.underflowed());
  // Reading an empty BRAM port yields a default element, never an exception.
  EXPECT_EQ(f.pop(), 0);
  EXPECT_TRUE(f.underflowed());
  // The flag is sticky: later legitimate traffic does not clear it.
  f.push(7);
  EXPECT_EQ(f.pop(), 7);
  EXPECT_TRUE(f.underflowed());
}

TEST(Fifo, UnderflowingPopConsumesNothing) {
  Fifo<int> f;
  f.push(1);
  (void)f.pop();
  (void)f.pop();  // underflow
  (void)f.pop();  // underflow
  EXPECT_EQ(f.pushes(), 1u);
  EXPECT_EQ(f.pops(), 1u);  // only the successful pop counts
  EXPECT_TRUE(f.empty());
  EXPECT_TRUE(f.underflowed());
  EXPECT_FALSE(f.overflowed());
}

TEST(Fifo, TracksHighWater) {
  Fifo<int> f;
  f.push(1);
  f.push(2);
  f.push(3);
  (void)f.pop();
  (void)f.pop();
  f.push(4);
  EXPECT_EQ(f.high_water(), 3u);
  EXPECT_EQ(f.size(), 2u);
}

TEST(Fifo, RecordsOverflowWithoutLosingData) {
  Fifo<int> f(2);
  f.push(1);
  f.push(2);
  EXPECT_FALSE(f.overflowed());
  f.push(3);
  EXPECT_TRUE(f.overflowed());
  EXPECT_EQ(f.pop(), 1);
  EXPECT_EQ(f.pop(), 2);
  EXPECT_EQ(f.pop(), 3);  // data preserved so the experiment can complete
}

TEST(Fifo, CountsPushesAndPops) {
  Fifo<int> f;
  for (int i = 0; i < 5; ++i) f.push(i);
  (void)f.pop();
  EXPECT_EQ(f.pushes(), 5u);
  EXPECT_EQ(f.pops(), 1u);
}

}  // namespace
}  // namespace swc::hw

#include "hw/iwt_module.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "image/rng.hpp"
#include "wavelet/column_decomposer.hpp"

namespace swc::hw {
namespace {

std::vector<std::vector<std::uint8_t>> random_columns(std::size_t n, std::size_t count,
                                                      std::uint64_t seed) {
  image::SplitMix64 rng(seed);
  std::vector<std::vector<std::uint8_t>> cols(count, std::vector<std::uint8_t>(n));
  for (auto& col : cols) {
    for (auto& v : col) v = static_cast<std::uint8_t>(rng.next() & 0xFF);
  }
  return cols;
}

class IwtStreaming : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IwtStreaming, MatchesGoldenDecompositionWithOneColumnLatency) {
  const std::size_t n = GetParam();
  const auto cols = random_columns(n, 12, n);
  IwtModule iwt(n);
  std::vector<std::uint8_t> out(n);
  std::vector<std::vector<std::uint8_t>> emitted;
  for (const auto& col : cols) {
    if (iwt.step(col, out)) emitted.push_back(out);
  }
  ASSERT_EQ(emitted.size(), cols.size() - 1);  // one column latency
  for (std::size_t pair = 0; pair + 1 < cols.size(); pair += 2) {
    const wavelet::CoeffColumnPair golden =
        wavelet::decompose_column_pair(cols[pair], cols[pair + 1]);
    ASSERT_EQ(emitted[pair], golden.even) << "pair " << pair;
    if (pair + 1 < emitted.size()) {
      ASSERT_EQ(emitted[pair + 1], golden.odd);
    }
  }
}

TEST_P(IwtStreaming, InverseModuleReconstructsPixelStream) {
  const std::size_t n = GetParam();
  const auto cols = random_columns(n, 10, n * 7 + 1);
  IwtModule iwt(n);
  IiwtModule iiwt(n);
  std::vector<std::uint8_t> coeff(n), pixel(n);
  std::vector<std::vector<std::uint8_t>> reconstructed;
  for (const auto& col : cols) {
    if (iwt.step(col, coeff)) {
      if (iiwt.step(coeff, pixel)) reconstructed.push_back(pixel);
    }
  }
  // Forward + inverse each cost one column of latency.
  ASSERT_EQ(reconstructed.size(), cols.size() - 2);
  for (std::size_t i = 0; i < reconstructed.size(); ++i) {
    ASSERT_EQ(reconstructed[i], cols[i]) << "column " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(WindowSizes, IwtStreaming, ::testing::Values(2, 4, 8, 16, 64));

TEST(IwtModule, FeedCollectSplitProtocol) {
  const std::size_t n = 4;
  const auto cols = random_columns(n, 4, 5);
  IwtModule iwt(n);
  std::vector<std::uint8_t> out(n);

  EXPECT_FALSE(iwt.collect_buffered(out));          // nothing buffered yet
  EXPECT_FALSE(iwt.feed(cols[0], out));             // even column latches only
  EXPECT_FALSE(iwt.has_buffered_output());
  EXPECT_TRUE(iwt.feed(cols[1], out));              // pair completes: even coeff col
  const wavelet::CoeffColumnPair golden = wavelet::decompose_column_pair(cols[0], cols[1]);
  EXPECT_EQ(out, golden.even);
  EXPECT_TRUE(iwt.has_buffered_output());
  EXPECT_TRUE(iwt.collect_buffered(out));           // odd coeff col next cycle
  EXPECT_EQ(out, golden.odd);
  EXPECT_FALSE(iwt.has_buffered_output());
}

TEST(IwtModule, ResetClearsState) {
  const std::size_t n = 4;
  const auto cols = random_columns(n, 3, 6);
  IwtModule iwt(n);
  std::vector<std::uint8_t> out(n);
  (void)iwt.step(cols[0], out);
  iwt.reset();
  EXPECT_FALSE(iwt.step(cols[1], out));  // treated as a fresh even column
  EXPECT_TRUE(iwt.step(cols[2], out));
  EXPECT_EQ(out, wavelet::decompose_column_pair(cols[1], cols[2]).even);
}

TEST(IwtModule, RejectsBadSizes) {
  EXPECT_THROW(IwtModule(3), std::invalid_argument);
  EXPECT_THROW(IwtModule(0), std::invalid_argument);
  IwtModule iwt(4);
  std::vector<std::uint8_t> bad(3), good(4);
  EXPECT_THROW((void)iwt.step(bad, good), std::invalid_argument);
  EXPECT_THROW((void)iwt.step(good, bad), std::invalid_argument);
  EXPECT_THROW(IiwtModule(5), std::invalid_argument);
}

}  // namespace
}  // namespace swc::hw

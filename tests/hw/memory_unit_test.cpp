#include "hw/memory_unit.hpp"

#include <gtest/gtest.h>

namespace swc::hw {
namespace {

TEST(BitmapWord, SetGetAcrossBothWords) {
  BitmapWord bm;
  bm.set(0, true);
  bm.set(63, true);
  bm.set(64, true);
  bm.set(127, true);
  EXPECT_TRUE(bm.get(0));
  EXPECT_TRUE(bm.get(63));
  EXPECT_TRUE(bm.get(64));
  EXPECT_TRUE(bm.get(127));
  EXPECT_FALSE(bm.get(1));
  EXPECT_FALSE(bm.get(100));
  bm.set(64, false);
  EXPECT_FALSE(bm.get(64));
}

TEST(MemoryUnit, RejectsBadWindow) {
  EXPECT_THROW(MemoryUnit(0), std::invalid_argument);
  EXPECT_THROW(MemoryUnit(129), std::invalid_argument);
  EXPECT_NO_THROW(MemoryUnit(128));
}

TEST(MemoryUnit, ByteStreamsAreIndependentAndOrdered) {
  MemoryUnit mem(2);
  mem.push_byte(0, 10);
  mem.push_byte(1, 20);
  mem.push_byte(0, 11);
  EXPECT_EQ(mem.pop_byte(0), 10);
  EXPECT_EQ(mem.pop_byte(1), 20);
  EXPECT_EQ(mem.pop_byte(0), 11);
}

TEST(MemoryUnit, ManagementFifosPreserveOrder) {
  MemoryUnit mem(4);
  BitmapWord bm1;
  bm1.set(2, true);
  mem.push_management(NBitsEntry{widths::NBitsField(3u), widths::NBitsField(5u)}, bm1);
  mem.push_management(NBitsEntry{widths::NBitsField(1u), widths::NBitsField(8u)}, BitmapWord{});
  const NBitsEntry n1 = mem.pop_nbits();
  EXPECT_EQ(n1.top, 3);
  EXPECT_EQ(n1.bottom, 5);
  EXPECT_TRUE(mem.pop_bitmap().get(2));
  EXPECT_EQ(mem.pop_nbits().bottom, 8);
  EXPECT_FALSE(mem.pop_bitmap().get(2));
}

TEST(MemoryUnit, OccupancyAccounting) {
  MemoryUnit mem(4);
  mem.push_byte(0, 1);
  mem.push_byte(0, 2);
  mem.push_byte(3, 3);
  mem.push_management(NBitsEntry{}, BitmapWord{});
  EXPECT_EQ(mem.payload_bits_stored(), 24u);
  EXPECT_EQ(mem.management_bits_stored(), 8u + 4u);  // 8-bit NBits + N-bit bitmap
  EXPECT_EQ(mem.total_bits_stored(), 36u);
  (void)mem.pop_byte(0);
  EXPECT_EQ(mem.payload_bits_stored(), 16u);
  EXPECT_EQ(mem.payload_high_water_bits(), 24u);
  EXPECT_EQ(mem.max_stream_high_water_bits(), 16u);
}

TEST(MemoryUnit, RowBoundaryDiscardsUnconsumedBytes) {
  MemoryUnit mem(1);
  // Row 0: three bytes pushed, unpacker consumes only one.
  mem.push_byte(0, 0xA0);
  mem.push_byte(0, 0xA1);
  mem.push_byte(0, 0xA2);
  mem.end_pack_row();
  // Row 1: one byte.
  mem.push_byte(0, 0xB0);
  mem.end_pack_row();

  mem.begin_unpack_row();           // opens row 0 (nothing to discard yet)
  EXPECT_EQ(mem.pop_byte(0), 0xA0);
  mem.begin_unpack_row();           // discards 0xA1, 0xA2
  EXPECT_EQ(mem.pop_byte(0), 0xB0);
}

TEST(MemoryUnit, RowBoundaryWithFullConsumptionDiscardsNothing) {
  MemoryUnit mem(1);
  mem.push_byte(0, 1);
  mem.end_pack_row();
  mem.push_byte(0, 2);
  mem.end_pack_row();
  mem.begin_unpack_row();
  EXPECT_EQ(mem.pop_byte(0), 1);
  mem.begin_unpack_row();
  EXPECT_EQ(mem.pop_byte(0), 2);
}

TEST(MemoryUnit, OverconsumptionAcrossRowIsDetected) {
  MemoryUnit mem(1);
  mem.push_byte(0, 1);
  mem.end_pack_row();
  mem.push_byte(0, 2);
  mem.end_pack_row();
  mem.begin_unpack_row();
  (void)mem.pop_byte(0);
  (void)mem.pop_byte(0);  // illegally eats into row 1
  EXPECT_THROW(mem.begin_unpack_row(), std::logic_error);
}

TEST(MemoryUnit, UnderflowIsRecordedNotThrown) {
  MemoryUnit mem(2);
  EXPECT_FALSE(mem.underflowed());
  // Reading any empty FIFO — payload or management — records, never throws.
  EXPECT_EQ(mem.pop_byte(0), 0);
  EXPECT_TRUE(mem.underflowed());

  MemoryUnit mgmt(2);
  const NBitsEntry nb = mgmt.pop_nbits();
  EXPECT_EQ(nb.top, 1);  // default-constructed entry (minimum legal width)
  EXPECT_TRUE(mgmt.underflowed());

  MemoryUnit ok(2);
  ok.push_byte(1, 9);
  EXPECT_EQ(ok.pop_byte(1), 9);
  EXPECT_FALSE(ok.underflowed());
}

TEST(MemoryUnit, CapacityOverflowIsRecorded) {
  MemoryUnit mem(1, /*payload_capacity_bytes=*/2);
  mem.push_byte(0, 1);
  mem.push_byte(0, 2);
  EXPECT_FALSE(mem.overflowed());
  mem.push_byte(0, 3);
  EXPECT_TRUE(mem.overflowed());
}

}  // namespace
}  // namespace swc::hw

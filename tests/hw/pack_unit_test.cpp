#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "bitpack/bitstream.hpp"
#include "bitpack/nbits.hpp"
#include "hw/bitpack_unit.hpp"
#include "hw/bitunpack_unit.hpp"
#include "hw/fifo.hpp"
#include "image/rng.hpp"

namespace swc::hw {
namespace {

struct Event {
  std::uint8_t coeff;
  int nbits;
  bool significant;
};

std::vector<Event> random_events(std::size_t count, std::uint64_t seed) {
  image::SplitMix64 rng(seed);
  std::vector<Event> events(count);
  for (auto& e : events) {
    e.coeff = static_cast<std::uint8_t>(rng.next() & 0xFF);
    e.nbits = std::max(1, bitpack::min_bits_u8(e.coeff));
    e.significant = (rng.next() & 3) != 0;  // 75% significant
    if (!e.significant) e.coeff = 0;
  }
  return events;
}

TEST(BitPackUnit, MatchesGoldenBitWriter) {
  const auto events = random_events(500, 42);
  BitPackUnit unit;
  std::vector<std::uint8_t> hw_bytes;
  bitpack::BitWriter golden;
  for (const auto& e : events) {
    if (const auto byte = unit.step(e.coeff, e.nbits, e.significant)) hw_bytes.push_back(*byte);
    if (e.significant) golden.put(e.coeff, e.nbits);
  }
  if (const auto byte = unit.flush()) hw_bytes.push_back(*byte);
  EXPECT_EQ(hw_bytes, golden.finish());
}

TEST(BitPackUnit, EmitsAtMostOneBytePerCycle) {
  BitPackUnit unit;
  for (int i = 0; i < 100; ++i) {
    (void)unit.step(0x7F, 8, true);
    EXPECT_LE(unit.pending_bits(), 7);
  }
}

TEST(BitPackUnit, FlushOnEmptyIsNoOp) {
  BitPackUnit unit;
  EXPECT_EQ(unit.flush(), std::nullopt);
  (void)unit.step(1, 2, true);
  ASSERT_NE(unit.flush(), std::nullopt);
  EXPECT_EQ(unit.flush(), std::nullopt);
  EXPECT_EQ(unit.pending_bits(), 0);
}

TEST(BitPackUnit, InsignificantCoefficientsCostNothing) {
  BitPackUnit unit;
  for (int i = 0; i < 50; ++i) EXPECT_EQ(unit.step(123, 8, false), std::nullopt);
  EXPECT_EQ(unit.pending_bits(), 0);
}

TEST(BitUnpackUnit, InvertsBitPackUnitExactly) {
  const auto events = random_events(800, 7);
  BitPackUnit packer;
  Fifo<std::uint8_t> fifo;
  for (const auto& e : events) {
    if (const auto byte = packer.step(e.coeff, e.nbits, e.significant)) fifo.push(*byte);
  }
  if (const auto byte = packer.flush()) fifo.push(*byte);

  BitUnpackUnit unpacker;
  for (const auto& e : events) {
    const std::uint8_t value =
        unpacker.step(e.nbits, e.significant, [&] { return fifo.pop(); });
    ASSERT_EQ(value, e.coeff);
  }
}

TEST(BitUnpackUnit, InsignificantProducesZeroWithoutFetching) {
  BitUnpackUnit unit;
  bool fetched = false;
  const std::uint8_t v = unit.step(8, false, [&] {
    fetched = true;
    return std::uint8_t{0xAB};
  });
  EXPECT_EQ(v, 0);
  EXPECT_FALSE(fetched);
}

TEST(BitUnpackUnit, FetchesAtMostOneBytePerCoefficient) {
  // Worst case from the paper: 1 residual bit followed by an 8-bit read
  // fits the 16-bit Yout_rem with a single fetch.
  BitPackUnit packer;
  Fifo<std::uint8_t> fifo;
  auto push = [&](std::optional<std::uint8_t> byte) {
    if (byte) fifo.push(*byte);
  };
  push(packer.step(1, 1, true));                                  // 1 bit
  push(packer.step(static_cast<std::uint8_t>(-100), 8, true));    // 8 bits
  push(packer.step(5, 4, true));
  push(packer.flush());

  BitUnpackUnit unpacker;
  int fetches = 0;
  auto fetch = [&] {
    ++fetches;
    return fifo.pop();
  };
  int before = fetches;
  EXPECT_EQ(unpacker.step(1, true, fetch), static_cast<std::uint8_t>(-1));
  EXPECT_LE(fetches - before, 1);
  before = fetches;
  EXPECT_EQ(unpacker.step(8, true, fetch), static_cast<std::uint8_t>(-100));
  EXPECT_LE(fetches - before, 1);
  before = fetches;
  EXPECT_EQ(unpacker.step(4, true, fetch), 5);
  EXPECT_LE(fetches - before, 1);
}

TEST(BitUnpackUnit, ResetRowDiscardsResidualBits) {
  BitPackUnit packer;
  Fifo<std::uint8_t> fifo;
  if (const auto b = packer.step(3, 3, true)) fifo.push(*b);
  if (const auto b = packer.flush()) fifo.push(*b);  // byte = 3 bits + padding

  BitUnpackUnit unpacker;
  EXPECT_EQ(unpacker.step(3, true, [&] { return fifo.pop(); }), 3);
  EXPECT_GT(unpacker.pending_bits(), 0);  // padding residue
  unpacker.reset_row();
  EXPECT_EQ(unpacker.pending_bits(), 0);
}

TEST(PackUnpackPair, RowBoundaryProtocolRoundTrips) {
  // Two independent "rows" with flush + reset between them.
  image::SplitMix64 rng(99);
  BitPackUnit packer;
  BitUnpackUnit unpacker;
  Fifo<std::uint8_t> fifo;
  for (int row = 0; row < 5; ++row) {
    std::vector<Event> events = random_events(64, 1000 + static_cast<std::uint64_t>(row));
    for (const auto& e : events) {
      if (const auto byte = packer.step(e.coeff, e.nbits, e.significant)) fifo.push(*byte);
    }
    if (const auto byte = packer.flush()) fifo.push(*byte);

    for (const auto& e : events) {
      ASSERT_EQ(unpacker.step(e.nbits, e.significant, [&] { return fifo.pop(); }), e.coeff);
    }
    // Discard any padding byte the unpacker never touched.
    while (!fifo.empty()) (void)fifo.pop();
    unpacker.reset_row();
  }
}

}  // namespace
}  // namespace swc::hw

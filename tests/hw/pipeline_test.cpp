#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/streaming_engine.hpp"
#include "hw/compressed_pipeline.hpp"
#include "hw/traditional_pipeline.hpp"
#include "image/metrics.hpp"
#include "image/synthetic.hpp"

namespace swc::hw {
namespace {

core::EngineConfig make_config(std::size_t w, std::size_t h, std::size_t n, int threshold = 0) {
  core::EngineConfig config;
  config.spec = {w, h, n};
  config.codec.threshold = threshold;
  return config;
}

template <typename Pipeline>
std::vector<std::vector<std::uint8_t>> run_pipeline(Pipeline& pipe, const image::ImageU8& img,
                                                    std::size_t n) {
  std::vector<std::vector<std::uint8_t>> windows;
  for (const std::uint8_t px : img.pixels()) {
    if (pipe.step(px)) {
      std::vector<std::uint8_t> flat;
      flat.reserve(n * n);
      for (std::size_t y = 0; y < n; ++y) {
        for (std::size_t x = 0; x < n; ++x) flat.push_back(pipe.window().at(x, y));
      }
      windows.push_back(std::move(flat));
    }
  }
  return windows;
}

class PipelineGeometry
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(PipelineGeometry, TraditionalPipelineMatchesGoldenEngine) {
  const auto [w, h, n] = GetParam();
  const auto img = image::make_natural_image(w, h, {.seed = w + h + n});
  TraditionalPipeline pipe({w, h, n});
  const auto cycle_windows = run_pipeline(pipe, img, n);

  core::TraditionalEngine golden({w, h, n});
  std::vector<std::vector<std::uint8_t>> golden_windows;
  golden.run(img, [&](std::size_t, std::size_t, const core::WindowView& win) {
    std::vector<std::uint8_t> flat;
    for (std::size_t y = 0; y < n; ++y) {
      for (std::size_t x = 0; x < n; ++x) flat.push_back(win.at(x, y));
    }
    golden_windows.push_back(std::move(flat));
  });
  ASSERT_EQ(cycle_windows.size(), golden_windows.size());
  for (std::size_t i = 0; i < cycle_windows.size(); ++i) {
    ASSERT_EQ(cycle_windows[i], golden_windows[i]) << "window #" << i;
  }
  EXPECT_EQ(pipe.cycles(), w * h);  // exactly one pixel per cycle
}

TEST_P(PipelineGeometry, CompressedPipelineLosslessMatchesTraditional) {
  const auto [w, h, n] = GetParam();
  const auto img = image::make_natural_image(w, h, {.seed = 3 * w + h + n});
  TraditionalPipeline trad({w, h, n});
  CompressedPipeline comp(make_config(w, h, n, 0));
  const auto wt = run_pipeline(trad, img, n);
  const auto wc = run_pipeline(comp, img, n);
  ASSERT_EQ(wt.size(), wc.size());
  for (std::size_t i = 0; i < wt.size(); ++i) {
    ASSERT_EQ(wt[i], wc[i]) << "window #" << i;
  }
  // The headline throughput claim: both are fully pipelined at 1 px/cycle.
  EXPECT_EQ(comp.cycles(), trad.cycles());
  EXPECT_EQ(comp.windows_emitted(), trad.windows_emitted());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PipelineGeometry,
    ::testing::Values(std::make_tuple(16, 12, 2), std::make_tuple(16, 12, 4),
                      std::make_tuple(32, 20, 8), std::make_tuple(48, 48, 8),
                      std::make_tuple(24, 40, 16), std::make_tuple(64, 16, 4)));

TEST(CompressedPipeline, LosslessOnRandomImage) {
  const auto img = image::make_random_image(32, 16, 77);
  TraditionalPipeline trad({32, 16, 4});
  CompressedPipeline comp(make_config(32, 16, 4, 0));
  EXPECT_EQ(run_pipeline(trad, img, 4), run_pipeline(comp, img, 4));
}

TEST(CompressedPipeline, WindowCountMatchesValidPositions) {
  const auto img = image::make_natural_image(40, 24);
  CompressedPipeline pipe(make_config(40, 24, 8));
  for (const std::uint8_t px : img.pixels()) (void)pipe.step(px);
  EXPECT_EQ(pipe.windows_emitted(), (40u - 8u + 1u) * (24u - 8u + 1u));
  EXPECT_EQ(pipe.cycles(), 40u * 24u);
}

TEST(CompressedPipeline, LossyOutputsStayCloseToPristine) {
  const std::size_t w = 64, h = 48, n = 8;
  const auto img = image::make_natural_image(w, h);
  for (const int t : {2, 6}) {
    TraditionalPipeline trad({w, h, n});
    CompressedPipeline comp(make_config(w, h, n, t));
    const auto wt = run_pipeline(trad, img, n);
    const auto wc = run_pipeline(comp, img, n);
    ASSERT_EQ(wt.size(), wc.size());
    double err = 0.0;
    std::size_t count = 0;
    int max_err = 0;
    for (std::size_t i = 0; i < wt.size(); ++i) {
      for (std::size_t j = 0; j < wt[i].size(); ++j) {
        const int d = static_cast<int>(wt[i][j]) - static_cast<int>(wc[i][j]);
        err += d * d;
        max_err = std::max(max_err, std::abs(d));
        ++count;
      }
    }
    const double mse = err / static_cast<double>(count);
    EXPECT_GT(mse, 0.0) << "t=" << t;
    EXPECT_LT(mse, 20.0 * t * t) << "t=" << t;
  }
}

TEST(CompressedPipeline, PeakBufferBelowTraditionalOnNaturalImage) {
  // Window 16: management overhead is 1.5 bits/coefficient, so a ~6 bpp
  // lossless payload clears the 8 bpp raw baseline with margin. (At window
  // 8 the overhead is 2 bits/coefficient and the margin can vanish — the
  // same effect that caps the paper's Fig. 13 savings for small windows.)
  const std::size_t w = 128, h = 48, n = 16;
  image::NaturalImageParams params;
  params.octaves = 5;
  params.detail_energy = 0.5;
  const auto img = image::make_natural_image(w, h, params);
  CompressedPipeline pipe(make_config(w, h, n, 0));
  for (const std::uint8_t px : img.pixels()) (void)pipe.step(px);
  // Traditional provisioning for the same loop: W columns of N pixels.
  const std::size_t traditional_bits = w * n * 8;
  EXPECT_LT(pipe.peak_buffer_bits(), traditional_bits);
  EXPECT_GT(pipe.peak_buffer_bits(), 0u);
  EXPECT_FALSE(pipe.memory().overflowed());
}

TEST(CompressedPipeline, TinyCapacityRecordsOverflow) {
  const auto img = image::make_random_image(32, 16, 9);
  CompressedPipeline pipe(make_config(32, 16, 4, 0), /*payload_capacity_bits_per_stream=*/64);
  for (const std::uint8_t px : img.pixels()) (void)pipe.step(px);
  EXPECT_TRUE(pipe.memory().overflowed());
}

TEST(CompressedPipeline, RejectsUnsupportedGranularity) {
  auto config = make_config(32, 16, 4);
  config.codec.granularity = bitpack::NBitsGranularity::PerCoefficient;
  EXPECT_THROW(CompressedPipeline{config}, std::invalid_argument);
}

TEST(CompressedPipeline, MemoryHoldsRoughlyOneRowOfColumns) {
  // Steady-state backlog is ~W column records in the management FIFOs.
  const std::size_t w = 64, h = 24, n = 4;
  const auto img = image::make_natural_image(w, h);
  CompressedPipeline pipe(make_config(w, h, n, 0));
  std::size_t i = 0;
  for (const std::uint8_t px : img.pixels()) {
    (void)pipe.step(px);
    if (++i == w * (h / 2)) {
      const std::size_t mgmt = pipe.memory().management_bits_stored();
      // W columns x (8 NBits + N bitmap) bits, +/- the pipeline latency.
      const std::size_t expected = w * (8 + n);
      EXPECT_NEAR(static_cast<double>(mgmt), static_cast<double>(expected),
                  static_cast<double>(3 * (8 + n)));
    }
  }
}

}  // namespace
}  // namespace swc::hw

#include "hw/shift_window.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace swc::hw {
namespace {

TEST(ShiftWindow, StartsZeroed) {
  ShiftWindow win(3);
  for (std::size_t y = 0; y < 3; ++y) {
    for (std::size_t x = 0; x < 3; ++x) EXPECT_EQ(win.at(x, y), 0);
  }
}

TEST(ShiftWindow, ColumnsShiftLeft) {
  ShiftWindow win(2);
  win.shift_in(std::vector<std::uint8_t>{1, 2});
  win.shift_in(std::vector<std::uint8_t>{3, 4});
  EXPECT_EQ(win.at(0, 0), 1);
  EXPECT_EQ(win.at(0, 1), 2);
  EXPECT_EQ(win.at(1, 0), 3);
  EXPECT_EQ(win.at(1, 1), 4);
  win.shift_in(std::vector<std::uint8_t>{5, 6});
  EXPECT_EQ(win.at(0, 0), 3);  // oldest column dropped
  EXPECT_EQ(win.at(1, 0), 5);
}

TEST(ShiftWindow, ReadRightmostReturnsNewestColumn) {
  ShiftWindow win(3);
  win.shift_in(std::vector<std::uint8_t>{1, 2, 3});
  win.shift_in(std::vector<std::uint8_t>{4, 5, 6});
  std::vector<std::uint8_t> col(3);
  win.read_rightmost(col);
  EXPECT_EQ(col, (std::vector<std::uint8_t>{4, 5, 6}));
}

TEST(ShiftWindow, RejectsBadColumnSizes) {
  ShiftWindow win(4);
  EXPECT_THROW(win.shift_in(std::vector<std::uint8_t>{1, 2}), std::invalid_argument);
  std::vector<std::uint8_t> small(2);
  EXPECT_THROW(win.read_rightmost(small), std::invalid_argument);
  EXPECT_THROW(ShiftWindow(0), std::invalid_argument);
}

TEST(ShiftWindow, SinglePixelWindowIsAPassThroughRegister) {
  // N = 1 degenerates to one register: every shift replaces the whole window.
  ShiftWindow win(1);
  EXPECT_EQ(win.size(), 1u);
  EXPECT_EQ(win.at(0, 0), 0);
  win.shift_in(std::vector<std::uint8_t>{42});
  EXPECT_EQ(win.at(0, 0), 42);
  win.shift_in(std::vector<std::uint8_t>{7});
  EXPECT_EQ(win.at(0, 0), 7);
  std::vector<std::uint8_t> col(1);
  win.read_rightmost(col);
  EXPECT_EQ(col[0], 7);
  EXPECT_EQ(win.row(0)[0], 7);
}

TEST(ShiftWindow, ReadRightmostBeforeWindowFillsSeesZerosThenData) {
  // Fewer than N shifts: the newest column is real data, the rest of the
  // window still holds the power-on zeros (columns drain left to right).
  ShiftWindow win(3);
  std::vector<std::uint8_t> col(3);
  win.read_rightmost(col);  // zero shifts: the reset state
  EXPECT_EQ(col, (std::vector<std::uint8_t>{0, 0, 0}));

  win.shift_in(std::vector<std::uint8_t>{1, 2, 3});
  win.read_rightmost(col);  // one shift out of three
  EXPECT_EQ(col, (std::vector<std::uint8_t>{1, 2, 3}));
  for (std::size_t y = 0; y < 3; ++y) {
    EXPECT_EQ(win.at(0, y), 0);  // untouched columns stay zeroed
    EXPECT_EQ(win.at(1, y), 0);
  }
}

TEST(ShiftWindow, FullRotationReplacesAllContent) {
  ShiftWindow win(3);
  for (std::uint8_t k = 0; k < 3; ++k) {
    win.shift_in(std::vector<std::uint8_t>{k, k, k});
  }
  for (std::uint8_t k = 10; k < 13; ++k) {
    win.shift_in(std::vector<std::uint8_t>{k, k, k});
  }
  for (std::size_t x = 0; x < 3; ++x) {
    for (std::size_t y = 0; y < 3; ++y) EXPECT_EQ(win.at(x, y), 10 + x);
  }
}

}  // namespace
}  // namespace swc::hw

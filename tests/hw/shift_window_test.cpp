#include "hw/shift_window.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace swc::hw {
namespace {

TEST(ShiftWindow, StartsZeroed) {
  ShiftWindow win(3);
  for (std::size_t y = 0; y < 3; ++y) {
    for (std::size_t x = 0; x < 3; ++x) EXPECT_EQ(win.at(x, y), 0);
  }
}

TEST(ShiftWindow, ColumnsShiftLeft) {
  ShiftWindow win(2);
  win.shift_in(std::vector<std::uint8_t>{1, 2});
  win.shift_in(std::vector<std::uint8_t>{3, 4});
  EXPECT_EQ(win.at(0, 0), 1);
  EXPECT_EQ(win.at(0, 1), 2);
  EXPECT_EQ(win.at(1, 0), 3);
  EXPECT_EQ(win.at(1, 1), 4);
  win.shift_in(std::vector<std::uint8_t>{5, 6});
  EXPECT_EQ(win.at(0, 0), 3);  // oldest column dropped
  EXPECT_EQ(win.at(1, 0), 5);
}

TEST(ShiftWindow, ReadRightmostReturnsNewestColumn) {
  ShiftWindow win(3);
  win.shift_in(std::vector<std::uint8_t>{1, 2, 3});
  win.shift_in(std::vector<std::uint8_t>{4, 5, 6});
  std::vector<std::uint8_t> col(3);
  win.read_rightmost(col);
  EXPECT_EQ(col, (std::vector<std::uint8_t>{4, 5, 6}));
}

TEST(ShiftWindow, RejectsBadColumnSizes) {
  ShiftWindow win(4);
  EXPECT_THROW(win.shift_in(std::vector<std::uint8_t>{1, 2}), std::invalid_argument);
  std::vector<std::uint8_t> small(2);
  EXPECT_THROW(win.read_rightmost(small), std::invalid_argument);
  EXPECT_THROW(ShiftWindow(0), std::invalid_argument);
}

TEST(ShiftWindow, FullRotationReplacesAllContent) {
  ShiftWindow win(3);
  for (std::uint8_t k = 0; k < 3; ++k) {
    win.shift_in(std::vector<std::uint8_t>{k, k, k});
  }
  for (std::uint8_t k = 10; k < 13; ++k) {
    win.shift_in(std::vector<std::uint8_t>{k, k, k});
  }
  for (std::size_t x = 0; x < 3; ++x) {
    for (std::size_t y = 0; y < 3; ++y) EXPECT_EQ(win.at(x, y), 10 + x);
  }
}

}  // namespace
}  // namespace swc::hw

#include "hw/video_pipeline.hpp"

#include <gtest/gtest.h>

#include "image/synthetic.hpp"

namespace swc::hw {
namespace {

core::EngineConfig base_config(std::size_t w, std::size_t h, std::size_t n) {
  core::EngineConfig config;
  config.spec = {w, h, n};
  return config;
}

TEST(VideoPipeline, ProcessesFramesAndRecordsHistory) {
  core::AdaptiveThresholdConfig ac;
  ac.budget_bits = 1 << 20;  // generous: never adapts
  VideoPipeline video(base_config(32, 24, 4), ac);
  const auto frame = image::make_natural_image(32, 24, {.seed = 1});
  for (int i = 0; i < 3; ++i) {
    const FrameReport r = video.process_frame(frame);
    EXPECT_EQ(r.frame_index, static_cast<std::size_t>(i));
    EXPECT_EQ(r.threshold, 0);
    EXPECT_EQ(r.cycles, 32u * 24u);
    EXPECT_EQ(r.windows, 29u * 21u);
    EXPECT_FALSE(r.overflowed);
  }
  EXPECT_EQ(video.history().size(), 3u);
  EXPECT_EQ(video.total_overflow_frames(), 0u);
}

TEST(VideoPipeline, AdaptsThresholdAcrossSceneChange) {
  const std::size_t w = 64, h = 48, n = 8;
  // A flat scene (only LL coefficients survive) guarantees a wide peak gap
  // against the random frame even at this small test geometry.
  const auto smooth = image::make_flat_image(w, h, 150);
  const auto noisy = image::make_random_image(w, h, 3);

  // Budget: measure the smooth frame's peak first, then set the budget
  // between smooth and noisy.
  core::AdaptiveThresholdConfig probe;
  probe.budget_bits = 1 << 24;
  VideoPipeline probe_video(base_config(w, h, n), probe);
  const std::size_t smooth_peak = probe_video.process_frame(smooth).peak_buffer_bits;
  const std::size_t noisy_peak = probe_video.process_frame(noisy).peak_buffer_bits;
  ASSERT_LT(smooth_peak, noisy_peak);

  core::AdaptiveThresholdConfig ac;
  ac.budget_bits = noisy_peak - noisy_peak / 10;
  ASSERT_LT(static_cast<double>(smooth_peak), ac.low_water * static_cast<double>(ac.budget_bits));
  VideoPipeline video(base_config(w, h, n), ac);

  for (int i = 0; i < 3; ++i) (void)video.process_frame(smooth);
  EXPECT_EQ(video.current_threshold(), 0);

  int last = 0;
  for (int i = 0; i < 20; ++i) last = video.process_frame(noisy).threshold;
  EXPECT_GT(video.current_threshold(), 0);
  (void)last;

  for (int i = 0; i < 20; ++i) (void)video.process_frame(smooth);
  EXPECT_EQ(video.current_threshold(), 0);  // recovered lossless operation
}

TEST(VideoPipeline, OverflowFlagTracksProvisionedCapacity) {
  core::AdaptiveThresholdConfig ac;
  ac.budget_bits = 1 << 20;
  VideoPipeline video(base_config(32, 16, 4), ac, /*capacity_bits_per_stream=*/64);
  const auto noisy = image::make_random_image(32, 16, 5);
  const FrameReport r = video.process_frame(noisy);
  EXPECT_TRUE(r.overflowed);
  EXPECT_EQ(video.total_overflow_frames(), 1u);
}

}  // namespace
}  // namespace swc::hw

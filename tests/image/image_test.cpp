#include "image/image.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace swc::image {
namespace {

TEST(Image, ConstructsWithFill) {
  ImageU8 img(4, 3, 7);
  EXPECT_EQ(img.width(), 4u);
  EXPECT_EQ(img.height(), 3u);
  EXPECT_EQ(img.size(), 12u);
  for (std::size_t y = 0; y < 3; ++y) {
    for (std::size_t x = 0; x < 4; ++x) EXPECT_EQ(img.at(x, y), 7);
  }
}

TEST(Image, DefaultIsEmpty) {
  ImageU8 img;
  EXPECT_TRUE(img.empty());
  EXPECT_EQ(img.size(), 0u);
}

TEST(Image, RejectsZeroDimensions) {
  EXPECT_THROW(ImageU8(0, 3), std::invalid_argument);
  EXPECT_THROW(ImageU8(3, 0), std::invalid_argument);
}

TEST(Image, RejectsMismatchedDataVector) {
  EXPECT_THROW(ImageU8(2, 2, std::vector<std::uint8_t>{1, 2, 3}), std::invalid_argument);
}

TEST(Image, AcceptsMatchingDataVector) {
  ImageU8 img(2, 2, std::vector<std::uint8_t>{1, 2, 3, 4});
  EXPECT_EQ(img.at(0, 0), 1);
  EXPECT_EQ(img.at(1, 0), 2);
  EXPECT_EQ(img.at(0, 1), 3);
  EXPECT_EQ(img.at(1, 1), 4);
}

TEST(Image, RowSpanIsContiguousRow) {
  ImageU8 img(3, 2);
  img.at(0, 1) = 10;
  img.at(2, 1) = 30;
  const auto row = img.row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], 10);
  EXPECT_EQ(row[2], 30);
}

TEST(Image, CheckedThrowsOutOfRange) {
  ImageU8 img(2, 2);
  EXPECT_THROW((void)img.checked(2, 0), std::out_of_range);
  EXPECT_THROW((void)img.checked(0, 2), std::out_of_range);
  EXPECT_NO_THROW((void)img.checked(1, 1));
}

TEST(Image, ClampedSamplesEdges) {
  ImageU8 img(2, 2, std::vector<std::uint8_t>{1, 2, 3, 4});
  EXPECT_EQ(img.clamped(-5, -5), 1);
  EXPECT_EQ(img.clamped(10, 0), 2);
  EXPECT_EQ(img.clamped(0, 10), 3);
  EXPECT_EQ(img.clamped(10, 10), 4);
}

TEST(Image, EqualityComparesContentAndShape) {
  ImageU8 a(2, 2, 5);
  ImageU8 b(2, 2, 5);
  EXPECT_EQ(a, b);
  b.at(1, 1) = 6;
  EXPECT_FALSE(a == b);
  ImageU8 c(4, 1, 5);
  EXPECT_FALSE(a == c);
}

TEST(Image, WorksWithWideTypes) {
  Image<std::int32_t> img(2, 2, -1000);
  EXPECT_EQ(img.at(1, 1), -1000);
  img.at(0, 0) = 70000;
  EXPECT_EQ(img.at(0, 0), 70000);
}

}  // namespace
}  // namespace swc::image

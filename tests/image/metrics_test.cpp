#include "image/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "image/synthetic.hpp"

namespace swc::image {
namespace {

TEST(Metrics, MseOfIdenticalImagesIsZero) {
  const ImageU8 img = make_natural_image(32, 32);
  EXPECT_EQ(mse(img, img), 0.0);
}

TEST(Metrics, MseKnownValue) {
  ImageU8 a(2, 2, 10);
  ImageU8 b(2, 2, 10);
  b.at(0, 0) = 14;  // one pixel off by 4 -> MSE = 16/4
  EXPECT_DOUBLE_EQ(mse(a, b), 4.0);
}

TEST(Metrics, MseThrowsOnSizeMismatch) {
  ImageU8 a(2, 2);
  ImageU8 b(4, 2);
  EXPECT_THROW((void)mse(a, b), std::invalid_argument);
}

TEST(Metrics, PsnrInfiniteWhenIdentical) {
  const ImageU8 img = make_flat_image(8, 8, 3);
  EXPECT_TRUE(std::isinf(psnr(img, img)));
}

TEST(Metrics, PsnrKnownValue) {
  ImageU8 a(1, 1, 0);
  ImageU8 b(1, 1, 255);
  // MSE = 255^2 -> PSNR = 0 dB.
  EXPECT_NEAR(psnr(a, b), 0.0, 1e-9);
}

TEST(Metrics, MaxAbsError) {
  ImageU8 a(2, 2, 100);
  ImageU8 b(2, 2, 100);
  b.at(1, 0) = 90;
  b.at(0, 1) = 117;
  EXPECT_EQ(max_abs_error(a, b), 17);
}

TEST(Metrics, EntropyOfFlatImageIsZero) {
  EXPECT_DOUBLE_EQ(entropy_bits(make_flat_image(16, 16, 123)), 0.0);
}

TEST(Metrics, EntropyOfTwoValueImageIsOneBit) {
  const ImageU8 img = make_checkerboard_image(16, 16, 1, 0, 255);
  EXPECT_NEAR(entropy_bits(img), 1.0, 1e-9);
}

TEST(Metrics, StatsOfKnownImage) {
  ImageU8 img(2, 2, std::vector<std::uint8_t>{0, 100, 200, 100});
  const ImageStats s = compute_stats(img);
  EXPECT_DOUBLE_EQ(s.mean, 100.0);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 200);
  EXPECT_NEAR(s.stddev, std::sqrt(5000.0), 1e-9);
}

}  // namespace
}  // namespace swc::image

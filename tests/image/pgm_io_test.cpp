#include "image/pgm_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "image/synthetic.hpp"

namespace swc::image {
namespace {

TEST(PgmIo, RoundTripsThroughStream) {
  const ImageU8 original = make_natural_image(37, 23);
  std::stringstream ss;
  write_pgm(original, ss);
  const ImageU8 restored = read_pgm(ss);
  EXPECT_EQ(original, restored);
}

TEST(PgmIo, ParsesHeaderWithComments) {
  std::stringstream ss;
  ss << "P5\n# a comment line\n2 # inline\n2\n255\n";
  ss.write("\x01\x02\x03\x04", 4);
  const ImageU8 img = read_pgm(ss);
  EXPECT_EQ(img.width(), 2u);
  EXPECT_EQ(img.at(1, 1), 4);
}

TEST(PgmIo, RejectsWrongMagic) {
  std::stringstream ss("P2\n2 2\n255\n");
  EXPECT_THROW((void)read_pgm(ss), std::runtime_error);
}

TEST(PgmIo, RejectsTruncatedPixelData) {
  std::stringstream ss;
  ss << "P5\n4 4\n255\n";
  ss.write("\x01\x02", 2);
  EXPECT_THROW((void)read_pgm(ss), std::runtime_error);
}

TEST(PgmIo, TruncationErrorNamesExpectedAndActualSizes) {
  std::stringstream ss;
  ss << "P5\n4 4\n255\n";
  ss.write("\x01\x02\x03", 3);
  try {
    (void)read_pgm(ss);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("4x4"), std::string::npos) << what;
    EXPECT_NE(what.find("expected 16"), std::string::npos) << what;
    EXPECT_NE(what.find("got 3"), std::string::npos) << what;
  }
}

TEST(PgmIo, RejectsPayloadLargerThanHeaderDimensions) {
  std::stringstream ss;
  ss << "P5\n2 2\n255\n";
  ss.write("\x01\x02\x03\x04\x05", 5);  // one byte too many
  EXPECT_THROW((void)read_pgm(ss), std::runtime_error);
}

TEST(PgmIo, RejectsWideMaxval) {
  std::stringstream ss("P5\n2 2\n65535\n");
  EXPECT_THROW((void)read_pgm(ss), std::runtime_error);
}

TEST(PgmIo, RejectsGarbageDimensions) {
  std::stringstream ss("P5\nfoo 2\n255\n");
  EXPECT_THROW((void)read_pgm(ss), std::runtime_error);
}

TEST(PgmIo, RejectsMissingHeaderFields) {
  std::stringstream ss("P5\n2");
  EXPECT_THROW((void)read_pgm(ss), std::runtime_error);
}

TEST(PgmIo, RoundTripsThroughFile) {
  const ImageU8 original = make_gradient_image(16, 8);
  const auto path = std::filesystem::temp_directory_path() / "swc_pgm_io_test.pgm";
  write_pgm(original, path);
  const ImageU8 restored = read_pgm(path);
  std::filesystem::remove(path);
  EXPECT_EQ(original, restored);
}

TEST(PgmIo, ReadMissingFileThrows) {
  EXPECT_THROW((void)read_pgm(std::filesystem::path("/nonexistent/no.pgm")), std::runtime_error);
}

}  // namespace
}  // namespace swc::image

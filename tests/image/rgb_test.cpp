#include "image/rgb.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "image/metrics.hpp"
#include "image/rng.hpp"

namespace swc::image {
namespace {

RgbImage random_rgb(std::size_t w, std::size_t h, std::uint64_t seed) {
  RgbImage img{ImageU8(w, h), ImageU8(w, h), ImageU8(w, h)};
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < img.r.size(); ++i) {
    img.r.pixels()[i] = static_cast<std::uint8_t>(rng.next() & 0xFF);
    img.g.pixels()[i] = static_cast<std::uint8_t>(rng.next() & 0xFF);
    img.b.pixels()[i] = static_cast<std::uint8_t>(rng.next() & 0xFF);
  }
  return img;
}

TEST(Rgb, NaturalRgbIsDeterministicAndCorrelated) {
  const RgbImage a = make_natural_rgb(64, 64, 5);
  const RgbImage b = make_natural_rgb(64, 64, 5);
  EXPECT_EQ(a, b);
  // Channels share structure: R-G differences are much smaller than the
  // channel dynamic range.
  double diff = 0.0;
  for (std::size_t i = 0; i < a.r.size(); ++i) {
    diff += std::abs(static_cast<int>(a.r.pixels()[i]) - static_cast<int>(a.g.pixels()[i]));
  }
  EXPECT_LT(diff / static_cast<double>(a.r.size()), 30.0);
  EXPECT_GT(compute_stats(a.r).stddev, 10.0);
}

TEST(Rgb, PpmRoundTrip) {
  const RgbImage img = make_natural_rgb(33, 17, 9);
  std::stringstream ss;
  write_ppm(img, ss);
  EXPECT_EQ(read_ppm(ss), img);
}

TEST(Rgb, PpmRejectsBadMagicAndTruncation) {
  std::stringstream bad("P5\n2 2\n255\n");
  EXPECT_THROW((void)read_ppm(bad), std::runtime_error);
  std::stringstream trunc;
  trunc << "P6\n4 4\n255\nxy";
  EXPECT_THROW((void)read_ppm(trunc), std::runtime_error);
}

TEST(Rgb, MseAveragesChannels) {
  RgbImage a{ImageU8(2, 2, 10), ImageU8(2, 2, 10), ImageU8(2, 2, 10)};
  RgbImage b = a;
  b.r = ImageU8(2, 2, 16);  // per-channel MSE: 36, 0, 0
  EXPECT_DOUBLE_EQ(rgb_mse(a, b), 12.0);
}

TEST(Rct, RoundTripsRandomImagesExactly) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const RgbImage img = random_rgb(16, 16, seed);
    EXPECT_EQ(rct_inverse(rct_forward(img)), img) << "seed=" << seed;
  }
}

TEST(Rct, RoundTripsExtremeCorners) {
  for (const int ri : {0, 255}) {
    const auto r = static_cast<std::uint8_t>(ri);
    for (const int gi : {0, 255}) {
      const auto g = static_cast<std::uint8_t>(gi);
      for (const int bi : {0, 255}) {
        const auto b = static_cast<std::uint8_t>(bi);
        RgbImage img{ImageU8(1, 1, r), ImageU8(1, 1, g), ImageU8(1, 1, b)};
        EXPECT_EQ(rct_inverse(rct_forward(img)), img);
      }
    }
  }
}

TEST(Rct, GrayPixelsHaveZeroChroma) {
  RgbImage gray{ImageU8(4, 4, 77), ImageU8(4, 4, 77), ImageU8(4, 4, 77)};
  const RctImage rct = rct_forward(gray);
  for (const auto v : rct.cb.pixels()) EXPECT_EQ(v, 0);
  for (const auto v : rct.cr.pixels()) EXPECT_EQ(v, 0);
  for (const auto v : rct.y.pixels()) EXPECT_EQ(v, 77);
}

TEST(Rct, DecorrelatesNaturalImages) {
  // Chroma energy should be far below channel energy for correlated content.
  const RgbImage img = make_natural_rgb(64, 64, 3);
  const RctImage rct = rct_forward(img);
  double chroma = 0.0;
  for (const auto v : rct.cb.pixels()) chroma += std::abs(v);
  chroma /= static_cast<double>(rct.cb.size());
  EXPECT_LT(chroma, compute_stats(img.g).stddev);
}

}  // namespace
}  // namespace swc::image

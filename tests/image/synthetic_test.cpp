#include "image/synthetic.hpp"

#include <gtest/gtest.h>

#include "image/metrics.hpp"

namespace swc::image {
namespace {

// Mean absolute difference between horizontal neighbours: a direct proxy for
// the "smooth colour variations" statistic the compression exploits.
double neighbour_roughness(const ImageU8& img) {
  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x + 1 < img.width(); ++x) {
      acc += std::abs(static_cast<int>(img.at(x + 1, y)) - static_cast<int>(img.at(x, y)));
      ++count;
    }
  }
  return acc / static_cast<double>(count);
}

TEST(Synthetic, NaturalImageIsDeterministicPerSeed) {
  NaturalImageParams p;
  p.seed = 42;
  const ImageU8 a = make_natural_image(64, 64, p);
  const ImageU8 b = make_natural_image(64, 64, p);
  EXPECT_EQ(a, b);
}

TEST(Synthetic, DifferentSeedsGiveDifferentImages) {
  NaturalImageParams a;
  a.seed = 1;
  NaturalImageParams b;
  b.seed = 2;
  EXPECT_FALSE(make_natural_image(64, 64, a) == make_natural_image(64, 64, b));
}

TEST(Synthetic, NaturalImageIsSmootherThanRandom) {
  const ImageU8 natural = make_natural_image(128, 128);
  const ImageU8 random = make_random_image(128, 128, 99);
  EXPECT_LT(neighbour_roughness(natural), neighbour_roughness(random) / 4.0);
}

TEST(Synthetic, NaturalImageUsesDynamicRange) {
  const ImageStats s = compute_stats(make_natural_image(256, 256));
  EXPECT_GT(s.stddev, 10.0);   // not flat
  EXPECT_GT(s.max - s.min, 80);  // meaningful contrast
}

TEST(Synthetic, DetailEnergyIncreasesRoughness) {
  NaturalImageParams smooth;
  smooth.detail_energy = 0.1;
  NaturalImageParams rough = smooth;
  rough.detail_energy = 3.0;
  EXPECT_LT(neighbour_roughness(make_natural_image(128, 128, smooth)),
            neighbour_roughness(make_natural_image(128, 128, rough)));
}

TEST(Synthetic, PlacesLikeSetHasRequestedCountAndVariety) {
  const auto set = make_places_like_set(64, 64, 10);
  ASSERT_EQ(set.size(), 10u);
  for (const auto& img : set) {
    EXPECT_EQ(img.width(), 64u);
    EXPECT_EQ(img.height(), 64u);
  }
  for (std::size_t i = 1; i < set.size(); ++i) EXPECT_FALSE(set[0] == set[i]);
}

TEST(Synthetic, RandomImageIsNearUniform) {
  const ImageU8 img = make_random_image(256, 256, 7);
  EXPECT_GT(entropy_bits(img), 7.9);  // uniform bytes ~ 8 bits/pixel
}

TEST(Synthetic, FlatImageIsConstant) {
  const ImageU8 img = make_flat_image(16, 16, 200);
  for (const auto px : img.pixels()) EXPECT_EQ(px, 200);
}

TEST(Synthetic, GradientIsMonotonicAcrossRow) {
  const ImageU8 img = make_gradient_image(32, 4);
  for (std::size_t x = 0; x + 1 < 32; ++x) EXPECT_LE(img.at(x, 0), img.at(x + 1, 0));
  EXPECT_EQ(img.at(0, 0), 0);
  EXPECT_EQ(img.at(31, 0), 255);
}

TEST(Synthetic, GrainAddsBoundedNoise) {
  NaturalImageParams clean;
  clean.seed = 5;
  NaturalImageParams grainy = clean;
  grainy.grain = 3.0;
  const ImageU8 a = make_natural_image(64, 64, clean);
  const ImageU8 b = make_natural_image(64, 64, grainy);
  EXPECT_LE(max_abs_error(a, b), 4);  // |grain| + rounding
  EXPECT_GT(mse(a, b), 0.5);          // but it is actually there
}

TEST(Synthetic, ResizeBilinearPreservesFlatImages) {
  const ImageU8 img = make_flat_image(16, 16, 137);
  const ImageU8 up = resize_bilinear(img, 64, 48);
  EXPECT_EQ(up.width(), 64u);
  EXPECT_EQ(up.height(), 48u);
  for (const auto px : up.pixels()) EXPECT_EQ(px, 137);
}

TEST(Synthetic, ResizeBilinearIdentityAtSameSize) {
  const ImageU8 img = make_natural_image(32, 32);
  EXPECT_EQ(resize_bilinear(img, 32, 32), img);
}

TEST(Synthetic, ResizeBilinearInterpolatesMonotonically) {
  const ImageU8 ramp = make_gradient_image(8, 4);
  const ImageU8 up = resize_bilinear(ramp, 32, 16);
  for (std::size_t x = 0; x + 1 < up.width(); ++x) {
    EXPECT_LE(up.at(x, 8), up.at(x + 1, 8));
  }
}

TEST(Synthetic, ResizeRejectsEmptyTarget) {
  const ImageU8 img(4, 4);
  EXPECT_THROW((void)resize_bilinear(img, 0, 4), std::invalid_argument);
}

TEST(Synthetic, UpscaledSetIsSmootherThanResolutionTrue) {
  const auto upscaled = make_places_like_set_upscaled(256, 256, 2, 2017, 32);
  const auto native = make_places_like_set(256, 256, 2);
  ASSERT_EQ(upscaled.size(), 2u);
  EXPECT_EQ(upscaled[0].width(), 256u);
  // Upscaling kills per-pixel detail: the statistic behind the paper's
  // favourable high-resolution compression results.
  EXPECT_LT(neighbour_roughness(upscaled[0]), neighbour_roughness(native[0]) / 2.0);
}

TEST(Synthetic, CheckerboardAlternates) {
  const ImageU8 img = make_checkerboard_image(8, 8, 2, 10, 240);
  EXPECT_EQ(img.at(0, 0), 10);
  EXPECT_EQ(img.at(2, 0), 240);
  EXPECT_EQ(img.at(0, 2), 240);
  EXPECT_EQ(img.at(2, 2), 10);
}

}  // namespace
}  // namespace swc::image

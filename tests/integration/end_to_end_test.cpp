// End-to-end scenarios tying the whole stack together: measured compression
// feeding BRAM provisioning, lossy processing quality, capacity planning
// with the adaptive-threshold controller, and the multi-stage pipelines the
// paper's introduction motivates.

#include <gtest/gtest.h>

#include "bram/allocator.hpp"
#include "core/accounting.hpp"
#include "core/adaptive_threshold.hpp"
#include "core/quality.hpp"
#include "core/streaming_engine.hpp"
#include "image/metrics.hpp"
#include "image/synthetic.hpp"
#include "kernels/kernels.hpp"
#include "window/apply.hpp"

namespace swc {
namespace {

core::EngineConfig make_config(std::size_t w, std::size_t h, std::size_t n, int threshold = 0) {
  core::EngineConfig config;
  config.spec = {w, h, n};
  config.codec.threshold = threshold;
  return config;
}

TEST(EndToEnd, MeasuredCompressionDrivesBramSaving) {
  // The full design flow: measure the image class, provision BRAMs, and
  // check the proposed architecture undercuts the traditional one.
  const std::size_t w = 256, h = 128, n = 16;
  const auto images = image::make_places_like_set(w, h, 4);
  const auto config = make_config(w, h, n, 0);

  std::size_t worst_stream = 0;
  for (const auto& img : images) {
    worst_stream = std::max(worst_stream,
                            core::compute_frame_cost(img, config).worst_stream_bits);
  }
  const auto trad = bram::allocate_traditional(config.spec);
  const auto prop = bram::allocate_proposed(config.spec, worst_stream);
  EXPECT_LT(prop.total_brams(), trad.total_brams);
  EXPECT_GT(bram::bram_saving_percent(trad, prop), 0.0);
}

TEST(EndToEnd, ProvisionedCapacityHoldsInCycleAccurateRun) {
  // Provision per-stream capacity from the functional accounting, then run
  // the cycle-accurate pipeline and verify no overflow was recorded.
  const std::size_t w = 96, h = 48, n = 8;
  const auto img = image::make_natural_image(w, h, {.seed = 8});
  const auto config = make_config(w, h, n, 0);
  const auto cost = core::compute_frame_cost(img, config, 1);
  // Headroom: the cycle model buffers W columns (vs W - N in the analytic
  // model) plus byte-alignment padding.
  const std::size_t capacity = cost.worst_stream_bits * (w + n) / (w - n) + 2 * 8 * 8;
  const auto result = window::apply_cycle_compressed(img, config, kernels::BoxMeanKernel{},
                                                     capacity);
  EXPECT_FALSE(result.memory_overflowed);
  EXPECT_EQ(result.output, window::apply_traditional(img, n, kernels::BoxMeanKernel{}));
}

TEST(EndToEnd, LossyGaussianStaysCloseToLosslessResult) {
  const std::size_t w = 64, h = 48, n = 8;
  const auto img = image::make_natural_image(w, h, {.seed = 14});
  const kernels::GaussianKernel kernel(n, 1.5);
  const auto exact = window::apply_traditional(img, n, kernel);
  const auto lossy = window::apply_compressed(img, make_config(w, h, n, 4), kernel);
  double max_dev = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    max_dev = std::max(max_dev, static_cast<double>(std::abs(
                                    exact.pixels()[i] - lossy.output.pixels()[i])));
  }
  EXPECT_GT(max_dev, 0.0);
  EXPECT_LT(max_dev, 16.0);  // smoothing kernel absorbs threshold-4 noise
}

TEST(EndToEnd, MultiStagePipelineSavesPerStage) {
  // The intro's "2-5 sequential sliding window operations" case: run a
  // 2-stage pipeline (Gaussian then box) where each stage uses a compressed
  // buffer, and verify both stages individually beat traditional memory.
  const std::size_t w = 128, h = 64, n = 8;
  const auto img = image::make_natural_image(w, h, {.seed = 30});
  const auto config1 = make_config(w, h, n, 0);

  core::CompressedEngine stage1(config1);
  image::ImageU8 intermediate(w - n + 1, h - n + 1);
  const kernels::BoxMeanKernel box;
  stage1.run(img, [&](std::size_t r, std::size_t c, const core::WindowView& win) {
    intermediate.at(c, r) = box(r, c, win);
  });
  EXPECT_LT(stage1.stats().max_row_bits(), config1.spec.traditional_bits() * (w) / (w - n));

  // Stage 2 consumes stage 1's stream; pad to even width for the codec.
  const std::size_t w2 = intermediate.width() - (intermediate.width() % 2);
  image::ImageU8 stage2_in(w2, intermediate.height());
  for (std::size_t y = 0; y < stage2_in.height(); ++y) {
    for (std::size_t x = 0; x < w2; ++x) stage2_in.at(x, y) = intermediate.at(x, y);
  }
  const auto config2 = make_config(w2, stage2_in.height(), n, 0);
  core::CompressedEngine stage2(config2);
  std::size_t windows = 0;
  stage2.run(stage2_in, [&](std::size_t, std::size_t, const core::WindowView&) { ++windows; });
  EXPECT_EQ(windows, (w2 - n + 1) * (stage2_in.height() - n + 1));
  EXPECT_EQ(stage2.reconstructed(), stage2_in);  // lossless through stage 2
}

TEST(EndToEnd, AdaptiveControllerPreventsOverflowOnSceneChange) {
  const std::size_t w = 64, h = 64, n = 8;
  core::EngineConfig config = make_config(w, h, n, 0);
  const auto smooth = image::make_natural_image(w, h, {.seed = 40});
  const std::size_t budget =
      core::compute_frame_cost(smooth, config).worst_band.total_bits() * 11 / 10;

  core::AdaptiveThresholdConfig ac;
  ac.budget_bits = budget;
  core::AdaptiveThresholdController ctrl(ac);

  // A hostile random frame arrives repeatedly; after a few frames the
  // controller's threshold must bring occupancy inside the budget.
  const auto noisy = image::make_random_image(w, h, 41);
  bool fitted = false;
  for (int frame = 0; frame < 30 && !fitted; ++frame) {
    config.codec.threshold = ctrl.threshold();
    const std::size_t bits = core::compute_frame_cost(noisy, config).worst_band.total_bits();
    (void)ctrl.observe(bits);
    fitted = bits <= budget;
  }
  EXPECT_TRUE(fitted);
  EXPECT_GT(ctrl.threshold(), 0);
}

TEST(EndToEnd, SinglePassAndStreamingMseOrdering) {
  // The streaming architecture recompresses rows up to N times, so its MSE
  // is at least the single-pass MSE (equal at T = 0).
  const std::size_t w = 64, h = 64, n = 8;
  const auto img = image::make_natural_image(w, h, {.seed = 50});
  for (const int t : {0, 4}) {
    bitpack::ColumnCodecConfig codec;
    codec.threshold = t;
    const double single = core::single_pass_mse(img, codec);
    const auto streamed = core::roundtrip_image(img, make_config(w, h, n, t));
    const double streaming = image::mse(img, streamed);
    if (t == 0) {
      EXPECT_EQ(single, 0.0);
      EXPECT_EQ(streaming, 0.0);
    } else {
      EXPECT_GE(streaming, single * 0.5);  // same order; drift adds on top
      EXPECT_GT(streaming, 0.0);
    }
  }
}

}  // namespace
}  // namespace swc

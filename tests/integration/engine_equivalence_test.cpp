// Cross-engine equivalence: the architectural claim that compression is
// transparent to the processing kernel. All four engines (functional and
// cycle-accurate, traditional and compressed) must agree bit-for-bit at
// threshold 0 on every kernel and geometry combination tested here.

#include <gtest/gtest.h>

#include <tuple>

#include "image/synthetic.hpp"
#include "kernels/kernels.hpp"
#include "window/apply.hpp"

namespace swc {
namespace {

core::EngineConfig make_config(std::size_t w, std::size_t h, std::size_t n, int threshold = 0) {
  core::EngineConfig config;
  config.spec = {w, h, n};
  config.codec.threshold = threshold;
  return config;
}

class EquivalenceMatrix
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(EquivalenceMatrix, BoxMeanAgreesAcrossAllEngines) {
  const auto [n, seed] = GetParam();
  const std::size_t w = 40, h = 32;
  const auto img = image::make_natural_image(w, h, {.seed = seed});
  const auto config = make_config(w, h, n);
  const kernels::BoxMeanKernel kernel;
  const auto reference = window::apply_traditional(img, n, kernel);
  EXPECT_EQ(reference, window::apply_compressed(img, config, kernel).output);
  EXPECT_EQ(reference, window::apply_cycle_traditional(img, n, kernel).output);
  EXPECT_EQ(reference, window::apply_cycle_compressed(img, config, kernel).output);
}

TEST_P(EquivalenceMatrix, MedianAgreesAcrossAllEngines) {
  const auto [n, seed] = GetParam();
  const std::size_t w = 36, h = 28;
  const auto img = image::make_random_image(w, h, seed);  // adversarial content
  const auto config = make_config(w, h, n);
  const kernels::MedianKernel kernel;
  const auto reference = window::apply_traditional(img, n, kernel);
  EXPECT_EQ(reference, window::apply_compressed(img, config, kernel).output);
  EXPECT_EQ(reference, window::apply_cycle_compressed(img, config, kernel).output);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EquivalenceMatrix,
                         ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{4},
                                                              std::size_t{8}),
                                            ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                                              std::uint64_t{3})));

TEST(Equivalence, GaussianLargeWindowAcrossEngines) {
  const std::size_t w = 48, h = 40, n = 16;
  const auto img = image::make_natural_image(w, h, {.seed = 4});
  const kernels::GaussianKernel kernel(n, 3.0);
  const auto reference = window::apply_traditional(img, n, kernel);
  const auto compressed = window::apply_cycle_compressed(img, make_config(w, h, n), kernel);
  ASSERT_EQ(reference.size(), compressed.output.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_FLOAT_EQ(reference.pixels()[i], compressed.output.pixels()[i]);
  }
}

TEST(Equivalence, ExtremePixelValuesSurviveAllEngines) {
  // Checkerboard of 0/255 maximises wrapped detail coefficients.
  const std::size_t w = 24, h = 20, n = 4;
  const auto img = image::make_checkerboard_image(w, h, 1);
  const kernels::BoxMeanKernel kernel;
  const auto reference = window::apply_traditional(img, n, kernel);
  EXPECT_EQ(reference, window::apply_cycle_compressed(img, make_config(w, h, n), kernel).output);
}

}  // namespace
}  // namespace swc

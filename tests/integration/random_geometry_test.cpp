// Fuzz-style hardening: random geometries, contents, and thresholds through
// the full stack. The invariants under test are the strongest ones the
// architecture offers: exact T = 0 equivalence of all engines at arbitrary
// (width, height, window) combinations, and bounded lossy deviation.

#include <gtest/gtest.h>

#include "core/streaming_engine.hpp"
#include "hw/compressed_pipeline.hpp"
#include "hw/traditional_pipeline.hpp"
#include "image/metrics.hpp"
#include "image/rng.hpp"
#include "image/synthetic.hpp"

namespace swc {
namespace {

struct Geometry {
  std::size_t w, h, n;
};

Geometry random_geometry(image::SplitMix64& rng) {
  // Even widths, windows >= 2 and <= min(w, h), everything even.
  const std::size_t n = 2 * (1 + rng.next_below(8));               // 2..16
  const std::size_t w = n + 2 * (2 + rng.next_below(30));          // n+4 .. n+62, even
  const std::size_t h = n + 1 + rng.next_below(40);                // any >= n+1
  return {w, h, n};
}

image::ImageU8 random_content(std::size_t w, std::size_t h, image::SplitMix64& rng) {
  switch (rng.next_below(4)) {
    case 0:
      return image::make_random_image(w, h, rng.next());
    case 1:
      return image::make_natural_image(w, h, {.seed = rng.next(), .grain = 2.0});
    case 2:
      return image::make_checkerboard_image(w, h, 1 + rng.next_below(4));
    default:
      return image::make_flat_image(w, h, static_cast<std::uint8_t>(rng.next() & 0xFF));
  }
}

TEST(RandomGeometry, LosslessPipelineEquivalenceSweep) {
  image::SplitMix64 rng(20250707);
  for (int trial = 0; trial < 25; ++trial) {
    const Geometry g = random_geometry(rng);
    const auto img = random_content(g.w, g.h, rng);

    core::EngineConfig config;
    config.spec = {g.w, g.h, g.n};
    config.codec.threshold = 0;

    hw::TraditionalPipeline trad(config.spec);
    hw::CompressedPipeline comp(config);
    for (const std::uint8_t px : img.pixels()) {
      const bool vt = trad.step(px);
      const bool vc = comp.step(px);
      ASSERT_EQ(vt, vc) << "trial " << trial << " geometry " << g.w << "x" << g.h << "/" << g.n;
      if (!vt) continue;
      for (std::size_t y = 0; y < g.n; ++y) {
        for (std::size_t x = 0; x < g.n; ++x) {
          ASSERT_EQ(trad.window().at(x, y), comp.window().at(x, y))
              << "trial " << trial << " at window (" << trad.out_row() << "," << trad.out_col()
              << ") cell (" << x << "," << y << ")";
        }
      }
    }
    ASSERT_EQ(comp.cycles(), img.size());
  }
}

TEST(RandomGeometry, LossyRoundTripStaysBoundedOnNaturalContentSweep) {
  image::SplitMix64 rng(42424242);
  for (int trial = 0; trial < 15; ++trial) {
    const Geometry g = random_geometry(rng);
    const auto img = image::make_natural_image(g.w, g.h, {.seed = rng.next(), .grain = 2.0});
    const int threshold = 1 + static_cast<int>(rng.next_below(8));

    core::EngineConfig config;
    config.spec = {g.w, g.h, g.n};
    config.codec.threshold = threshold;

    const auto out = core::roundtrip_image(img, config);
    EXPECT_LE(image::mse(img, out), 16.0 * threshold * threshold)
        << "trial " << trial << " T=" << threshold;
  }
}

TEST(RandomGeometry, LossyWrapAliasingOnExtremeEdgesIsReal) {
  // A property of the paper's 8-bit datapath the paper does not discuss:
  // thresholding happens on the *wrapped* coefficient, so a true detail of
  // +-255 (a 0<->255 edge) wraps to -+1 and is zeroed by any threshold >= 2,
  // producing a full-scale reconstruction error. Lossless mode (T = 0) is
  // immune because modular lifting is exactly invertible. Documented in
  // EXPERIMENTS.md; this test pins the behaviour so it stays visible.
  const auto img = image::make_checkerboard_image(32, 16, 1);  // 0/255 everywhere
  core::EngineConfig config;
  config.spec = {32, 16, 4};

  config.codec.threshold = 0;
  EXPECT_EQ(image::max_abs_error(img, core::roundtrip_image(img, config)), 0);

  config.codec.threshold = 2;
  EXPECT_GT(image::max_abs_error(img, core::roundtrip_image(img, config)), 200);
}

TEST(RandomGeometry, GoldenEnginesAgreeSweep) {
  image::SplitMix64 rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    const Geometry g = random_geometry(rng);
    const auto img = random_content(g.w, g.h, rng);

    core::EngineConfig config;
    config.spec = {g.w, g.h, g.n};
    config.codec.threshold = 0;

    core::TraditionalEngine trad(config.spec);
    core::CompressedEngine comp(config);
    std::vector<std::uint64_t> ht, hc;
    auto hasher = [](std::vector<std::uint64_t>& sink) {
      return [&sink](std::size_t r, std::size_t c, const core::WindowView& win) {
        std::uint64_t h = r * 1315423911u + c;
        for (std::size_t y = 0; y < win.size(); ++y) {
          for (std::size_t x = 0; x < win.size(); ++x) {
            h = h * 1099511628211ull + win.at(x, y);
          }
        }
        sink.push_back(h);
      };
    };
    trad.run(img, hasher(ht));
    comp.run(img, hasher(hc));
    ASSERT_EQ(ht, hc) << "trial " << trial;
  }
}

}  // namespace
}  // namespace swc

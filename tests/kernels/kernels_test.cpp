#include "kernels/kernels.hpp"

#include <gtest/gtest.h>

#include "core/streaming_engine.hpp"
#include "image/synthetic.hpp"
#include "window/apply.hpp"

namespace swc::kernels {
namespace {

// Simple standalone window for direct kernel tests.
struct TestWindow {
  image::ImageU8 data;
  [[nodiscard]] std::uint8_t at(std::size_t x, std::size_t y) const { return data.at(x, y); }
  [[nodiscard]] std::size_t size() const { return data.width(); }
};

TestWindow flat_window(std::size_t n, std::uint8_t v) { return {image::ImageU8(n, n, v)}; }

TEST(BoxMean, FlatWindowReturnsValue) {
  EXPECT_EQ(BoxMeanKernel{}(0, 0, flat_window(8, 99)), 99);
}

TEST(BoxMean, AveragesCorrectly) {
  TestWindow win{image::ImageU8(2, 2, std::vector<std::uint8_t>{0, 0, 100, 100})};
  EXPECT_EQ(BoxMeanKernel{}(0, 0, win), 50);
}

TEST(Gaussian, WeightsAreNormalised) {
  const GaussianKernel k(8, 1.5);
  EXPECT_NEAR(k(0, 0, flat_window(8, 200)), 200.0f, 1e-3f);
}

TEST(Gaussian, CoverageImprovesWithWindowSize) {
  const double sigma = 4.0;
  const GaussianKernel small(8, sigma);    // 8 = 2 sigma: heavy trimming
  const GaussianKernel large(32, sigma);   // 32 = 8 sigma: > 5 sigma rule
  EXPECT_LT(small.coverage_1d(), large.coverage_1d());
  EXPECT_GT(large.coverage_1d(), 0.999);  // the intro's ">= 5 sigma" criterion
  EXPECT_LT(small.coverage_1d(), 0.70);
}

TEST(Gaussian, RejectsBadParameters) {
  EXPECT_THROW(GaussianKernel(0, 1.0), std::invalid_argument);
  EXPECT_THROW(GaussianKernel(8, 0.0), std::invalid_argument);
  const GaussianKernel k(8, 1.0);
  EXPECT_THROW((void)k(0, 0, flat_window(4, 1)), std::invalid_argument);
}

TEST(Sobel, FlatWindowHasZeroGradient) {
  EXPECT_EQ(SobelKernel{}(0, 0, flat_window(4, 128)), 0);
}

TEST(Sobel, VerticalEdgeDetected) {
  image::ImageU8 img(4, 4, 0);
  for (std::size_t y = 0; y < 4; ++y) {
    img.at(2, y) = 255;
    img.at(3, y) = 255;
  }
  EXPECT_GT(SobelKernel{}(0, 0, TestWindow{img}), 500);
}

TEST(Median, FlatWindow) { EXPECT_EQ(MedianKernel{}(0, 0, flat_window(4, 42)), 42); }

TEST(Median, RejectsSaltNoise) {
  image::ImageU8 img(4, 4, 100);
  img.at(0, 0) = 255;
  img.at(3, 3) = 0;
  EXPECT_EQ(MedianKernel{}(0, 0, TestWindow{img}), 100);
}

TEST(Harris, FlatWindowScoresZero) {
  EXPECT_FLOAT_EQ(HarrisKernel{}(0, 0, flat_window(8, 77)), 0.0f);
}

TEST(Harris, CornerScoresAboveEdge) {
  const std::size_t n = 8;
  image::ImageU8 corner(n, n, 0);
  image::ImageU8 edge(n, n, 0);
  for (std::size_t y = 0; y < n; ++y) {
    for (std::size_t x = 0; x < n; ++x) {
      if (x >= n / 2 && y >= n / 2) corner.at(x, y) = 255;  // quarter-plane corner
      if (x >= n / 2) edge.at(x, y) = 255;                  // straight edge
    }
  }
  const HarrisKernel k;
  EXPECT_GT(k(0, 0, TestWindow{corner}), k(0, 0, TestWindow{edge}));
  EXPECT_GT(k(0, 0, TestWindow{corner}), 0.0f);
}

TEST(Ncc, PerfectMatchScoresNearOne) {
  const std::size_t n = 8;
  const image::ImageU8 pattern = image::make_natural_image(n, n, {.seed = 5});
  std::vector<std::uint8_t> tmpl(pattern.pixels().begin(), pattern.pixels().end());
  const NccTemplateKernel k(tmpl, n);
  EXPECT_NEAR(k(0, 0, TestWindow{pattern}), 1.0f, 1e-4f);
}

TEST(Ncc, FlatWindowScoresZero) {
  const std::size_t n = 4;
  std::vector<std::uint8_t> tmpl(n * n);
  for (std::size_t i = 0; i < tmpl.size(); ++i) tmpl[i] = static_cast<std::uint8_t>(i * 16);
  const NccTemplateKernel k(tmpl, n);
  EXPECT_FLOAT_EQ(k(0, 0, flat_window(n, 50)), 0.0f);
}

TEST(Ncc, MismatchScoresBelowMatch) {
  const std::size_t n = 8;
  const image::ImageU8 pattern = image::make_natural_image(n, n, {.seed = 6});
  const image::ImageU8 other = image::make_natural_image(n, n, {.seed = 777});
  std::vector<std::uint8_t> tmpl(pattern.pixels().begin(), pattern.pixels().end());
  const NccTemplateKernel k(tmpl, n);
  EXPECT_GT(k(0, 0, TestWindow{pattern}), k(0, 0, TestWindow{other}));
}

TEST(Ncc, RejectsWrongTemplateSize) {
  EXPECT_THROW(NccTemplateKernel(std::vector<std::uint8_t>(10), 4), std::invalid_argument);
}

TEST(Morphology, ErodeDilateOnFlatWindow) {
  EXPECT_EQ(ErodeKernel{}(0, 0, flat_window(4, 99)), 99);
  EXPECT_EQ(DilateKernel{}(0, 0, flat_window(4, 99)), 99);
}

TEST(Morphology, ErodeTakesMinDilateTakesMax) {
  image::ImageU8 img(4, 4, 100);
  img.at(1, 2) = 3;
  img.at(3, 0) = 250;
  EXPECT_EQ(ErodeKernel{}(0, 0, TestWindow{img}), 3);
  EXPECT_EQ(DilateKernel{}(0, 0, TestWindow{img}), 250);
}

TEST(Morphology, DualityUnderComplement) {
  // erode(img) == 255 - dilate(255 - img) on every window.
  const auto img = image::make_natural_image(16, 16, {.seed = 3});
  image::ImageU8 inv(16, 16);
  for (std::size_t i = 0; i < img.size(); ++i) {
    inv.pixels()[i] = static_cast<std::uint8_t>(255 - img.pixels()[i]);
  }
  const auto eroded = window::apply_traditional(img, 4, ErodeKernel{});
  const auto dilated_inv = window::apply_traditional(inv, 4, DilateKernel{});
  for (std::size_t i = 0; i < eroded.size(); ++i) {
    ASSERT_EQ(eroded.pixels()[i], 255 - dilated_inv.pixels()[i]);
  }
}

TEST(Census, FlatWindowCodesZero) {
  EXPECT_EQ(CensusKernel{}(0, 0, flat_window(4, 50)), 0u);
}

TEST(Census, CodesNeighboursBelowCentre) {
  image::ImageU8 img(4, 4, 200);
  img.at(0, 0) = 10;  // below the centre at (2,2)
  const std::uint64_t code = CensusKernel{}(0, 0, TestWindow{img});
  EXPECT_EQ(code, 1u);  // first neighbour bit only
}

TEST(Census, InvariantToMonotoneBrightnessShift) {
  const auto img = image::make_natural_image(8, 8, {.seed = 6, .contrast = 0.5});
  image::ImageU8 brighter(8, 8);
  for (std::size_t i = 0; i < img.size(); ++i) {
    brighter.pixels()[i] = static_cast<std::uint8_t>(
        std::min(255, static_cast<int>(img.pixels()[i]) + 30));
  }
  const CensusKernel k;
  EXPECT_EQ(k(0, 0, TestWindow{img}), k(0, 0, TestWindow{brighter}));
}

TEST(Census, RejectsOversizedWindow) {
  EXPECT_THROW((void)CensusKernel{}(0, 0, flat_window(10, 1)), std::invalid_argument);
}

TEST(LensDistortion, ZeroCoefficientIsIdentityAtWindowCentreOddOffset) {
  const LensDistortionKernel k(64, 64, 8, 0.0);
  image::ImageU8 img(8, 8);
  for (std::size_t y = 0; y < 8; ++y) {
    for (std::size_t x = 0; x < 8; ++x) {
      img.at(x, y) = static_cast<std::uint8_t>(x * 10 + y);
    }
  }
  // With k1 = 0 the sample point is the window centre (3.5, 3.5): the
  // bilinear blend of the four central pixels.
  const double expected = (img.at(3, 3) + img.at(4, 3) + img.at(3, 4) + img.at(4, 4)) / 4.0;
  EXPECT_NEAR(k(10, 10, TestWindow{img}), expected, 1.0);
}

TEST(LensDistortion, MaxDisplacementScalesWithK1) {
  const LensDistortionKernel weak(256, 256, 16, 0.01);
  const LensDistortionKernel strong(256, 256, 16, 0.05);
  EXPECT_LT(weak.max_displacement(), strong.max_displacement());
  EXPECT_GT(strong.max_displacement(), 0.0);
}

TEST(LensDistortion, CorrectsKnownDistortionBetterThanIdentity) {
  // Distort a natural image with the inverse model, then check the kernel
  // restores it closer to the original than doing nothing.
  const std::size_t size = 64;
  const double k1 = 0.1;  // ~4.5 px peak displacement: well above rounding noise
  const image::ImageU8 original = image::make_natural_image(size, size, {.seed = 12});
  image::ImageU8 distorted(size, size);
  const double cx = (size - 1) / 2.0, cy = (size - 1) / 2.0;
  const double rmax = std::sqrt(cx * cx + cy * cy);
  for (std::size_t y = 0; y < size; ++y) {
    for (std::size_t x = 0; x < size; ++x) {
      // The corrected image samples source at p + d(p); build `distorted`
      // so that sampling it at p + d(p) returns original(p).
      const double dx = static_cast<double>(x) - cx;
      const double dy = static_cast<double>(y) - cy;
      const double r2 = (dx * dx + dy * dy) / (rmax * rmax);
      const double sx = cx + dx / (1.0 + k1 * r2);
      const double sy = cy + dy / (1.0 + k1 * r2);
      distorted.at(x, y) = original.clamped(static_cast<std::ptrdiff_t>(std::lround(sx)),
                                            static_cast<std::ptrdiff_t>(std::lround(sy)));
    }
  }
  const std::size_t n = 16;
  const LensDistortionKernel kernel(size, size, n, k1);
  const auto corrected = window::apply_traditional(distorted, n, kernel);
  // Even windows centre on a half-pixel (x + 7.5 for n = 16), so ground
  // truth and the identity baseline must be sampled bilinearly at the same
  // sub-pixel position the kernel outputs for.
  auto bilin = [](const image::ImageU8& img, double x, double y) {
    const auto x0 = static_cast<std::size_t>(x);
    const auto y0 = static_cast<std::size_t>(y);
    const double fx = x - static_cast<double>(x0);
    const double fy = y - static_cast<double>(y0);
    return (1 - fx) * (1 - fy) * img.at(x0, y0) + fx * (1 - fy) * img.at(x0 + 1, y0) +
           (1 - fx) * fy * img.at(x0, y0 + 1) + fx * fy * img.at(x0 + 1, y0 + 1);
  };
  const double half = (n - 1) / 2.0;
  double err_corrected = 0.0, err_identity = 0.0;
  std::size_t count = 0;
  for (std::size_t y = 0; y < corrected.height(); ++y) {
    for (std::size_t x = 0; x < corrected.width(); ++x) {
      const double cxp = static_cast<double>(x) + half;
      const double cyp = static_cast<double>(y) + half;
      const double truth = bilin(original, cxp, cyp);
      const double ident = bilin(distorted, cxp, cyp);
      const double corr = corrected.at(x, y);
      err_corrected += (corr - truth) * (corr - truth);
      err_identity += (ident - truth) * (ident - truth);
      ++count;
    }
  }
  EXPECT_LT(err_corrected / static_cast<double>(count), err_identity / static_cast<double>(count));
}

}  // namespace
}  // namespace swc::kernels

#include "related/baselines.hpp"

#include <gtest/gtest.h>

namespace swc::related {
namespace {

core::SlidingWindowSpec spec512(std::size_t window = 8) { return {512, 512, window}; }

TEST(LineBuffer, OneAccessPerWindowAndStreamable) {
  const auto f = line_buffer_figures(spec512());
  EXPECT_DOUBLE_EQ(f.offchip_per_window, 1.0);
  EXPECT_TRUE(f.camera_streamable);
  EXPECT_EQ(f.brams, 8u);
  EXPECT_EQ(f.onchip_bits, (512u - 8u) * 8u * 8u);
}

TEST(Compressed, SameTrafficFewerBrams) {
  const auto spec = spec512(16);
  const auto raw = line_buffer_figures(spec);
  // A measured stream of ~5 bits/pixel (typical lossless natural image).
  const auto comp = compressed_figures(spec, (512 - 16) * 5);
  EXPECT_DOUBLE_EQ(comp.offchip_per_window, 1.0);
  EXPECT_TRUE(comp.camera_streamable);
  EXPECT_LT(comp.brams, raw.brams);
  EXPECT_LT(comp.onchip_bits, raw.onchip_bits);
}

TEST(BlockBuffer, TrafficExceedsOneAccessPerWindow) {
  // Section II: block buffering's "average number of off-chip accesses is
  // greater than 1 pixel per window operation".
  for (const std::size_t block : {16u, 32u, 64u}) {
    const auto f = block_buffer_figures(spec512(8), block);
    EXPECT_GT(f.offchip_per_window, 1.0) << "block=" << block;
    EXPECT_FALSE(f.camera_streamable);
  }
}

TEST(BlockBuffer, LargerBlocksReduceTraffic) {
  const auto small = block_buffer_figures(spec512(8), 16);
  const auto large = block_buffer_figures(spec512(8), 64);
  EXPECT_GT(small.offchip_per_window, large.offchip_per_window);
  EXPECT_LT(small.onchip_bits, large.onchip_bits);  // the trade-off
}

TEST(BlockBuffer, TrafficFormulaSanity) {
  // Block 64, window 8: stride 57; fetches/window -> B^2 / stride^2 in the
  // interior ~ 1.26.
  const auto f = block_buffer_figures(spec512(8), 64);
  EXPECT_NEAR(f.offchip_per_window, 64.0 * 64.0 / (57.0 * 57.0), 0.1);
}

TEST(BlockBuffer, RejectsBlockNotExceedingWindow) {
  EXPECT_THROW((void)block_buffer_figures(spec512(8), 8), std::invalid_argument);
}

TEST(BlockBuffer, BudgetSearchMonotone) {
  const auto spec = spec512(8);
  const std::size_t small = best_block_under_budget(spec, 2);
  const std::size_t large = best_block_under_budget(spec, 8);
  EXPECT_GT(small, 8u);
  EXPECT_GE(large, small);
  // 2 BRAMs = 36,864 bits -> 2*B^2*8 <= 36864 -> B <= 48.
  EXPECT_EQ(small, 48u);
}

TEST(BlockBuffer, BudgetSearchReturnsZeroWhenNothingFits) {
  EXPECT_EQ(best_block_under_budget(spec512(120), 0), 0u);
}

TEST(Segmentation, SavesBramsButRefetchesHalo) {
  // BRAM granularity only shows the saving once a full line spans multiple
  // BRAMs (width > 2048), which is exactly the regime ref [7] targets.
  const auto spec = core::SlidingWindowSpec{4096, 4096, 8};
  const auto full = line_buffer_figures(spec);
  const auto seg = segmentation_figures(spec, 2048);
  EXPECT_LT(seg.brams, full.brams);
  EXPECT_GT(seg.offchip_per_window, 1.0);
  EXPECT_FALSE(seg.camera_streamable);
}

TEST(Segmentation, FullWidthSegmentApproachesOneAccess) {
  const auto spec = spec512(8);
  const auto f = segmentation_figures(spec, 512);
  EXPECT_NEAR(f.offchip_per_window, 1.0, 0.05);
}

TEST(Segmentation, RejectsBadSegmentWidths) {
  EXPECT_THROW((void)segmentation_figures(spec512(8), 4), std::invalid_argument);
  EXPECT_THROW((void)segmentation_figures(spec512(8), 1024), std::invalid_argument);
}

TEST(Segmentation, BudgetSearchFindsWidestFit) {
  const auto spec = core::SlidingWindowSpec{4096, 4096, 8};
  // 8 BRAMs budget: 8 lines x ceil(S/2048) <= 8 -> S <= 2048.
  EXPECT_EQ(best_segment_under_budget(spec, 8), 2048u);
  EXPECT_EQ(best_segment_under_budget(spec, 16), 4096u);
  EXPECT_EQ(best_segment_under_budget(spec, 4), 0u);
}

}  // namespace
}  // namespace swc::related

// Capacity-planner core: resources::Composition sums K heterogeneous
// pipeline specs against a Device budget. The anchor property is bit-equality
// of a 1-pipeline composition with the calibrated single-pipeline estimate
// (the paper's Table X plus the BRAM allocation) — the composition must add
// nothing until a second pipeline makes the interconnect real.

#include "resources/composition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "bram/allocator.hpp"
#include "resources/device.hpp"
#include "resources/estimator.hpp"

namespace swc::resources {
namespace {

hw::PipelineSpec spec_of(std::size_t width, std::size_t height, std::size_t window,
                         int threshold = 0) {
  hw::PipelineSpec spec;
  spec.geometry = {width, height, window};
  spec.threshold = threshold;
  return spec;
}

TEST(Composition, EmptyCompositionFitsAnyDevice) {
  const Composition design;
  EXPECT_TRUE(design.empty());
  const FitReport fit = design.fit(kXC7Z010);
  EXPECT_TRUE(fit.fits);
  EXPECT_EQ(fit.binding_constraint, Constraint::None);
  EXPECT_DOUBLE_EQ(fit.headroom, 1.0);
  EXPECT_DOUBLE_EQ(fit.lut_utilization, 0.0);
}

TEST(Composition, SinglePipelineIsBitEqualToOverallEstimate) {
  // Acceptance criterion: K=1 pays zero interconnect logic, so the composed
  // cost collapses to estimate_overall + the bram/ allocation — exactly.
  const auto spec = spec_of(512, 512, 8);
  Composition design;
  design.add(spec);

  const DesignCost cost = design.cost();
  const ResourceEstimate single = estimate_overall(8);
  EXPECT_EQ(cost.luts, single.luts);
  EXPECT_EQ(cost.registers, single.registers);
  EXPECT_DOUBLE_EQ(cost.fmax_mhz, single.fmax_mhz);

  const ResourceEstimate full = estimate_overall_for(spec);
  EXPECT_EQ(cost.bram18k, full.bram18k);
  EXPECT_GT(cost.bram18k, 0u);
  EXPECT_EQ(cost.bram18k,
            bram::allocate_proposed(spec.geometry, spec.provisioned_stream_bits()).total_brams());
}

TEST(Composition, InterconnectLogicChargedOnlyBeyondOnePipeline) {
  const auto spec = spec_of(512, 512, 8);
  Composition design;
  design.add(spec);
  design.add(spec);

  const DesignCost cost = design.cost();
  const ResourceEstimate single = estimate_overall(8);
  const InterconnectModel& model = design.model();
  EXPECT_EQ(cost.luts, 2 * single.luts + 2 * model.luts_per_pipeline);
  EXPECT_EQ(cost.registers, 2 * single.registers + 2 * model.registers_per_pipeline);
  EXPECT_DOUBLE_EQ(cost.interconnect_bytes_per_cycle, 2 * kPipelineBytesPerCycle);
}

TEST(Composition, ComposedClockIsTheSlowestMember) {
  Composition design;
  design.add(spec_of(512, 512, 8));
  design.add(spec_of(512, 512, 32));
  const DesignCost cost = design.cost();
  const double f8 = estimate_overall(8).fmax_mhz;
  const double f32 = estimate_overall(32).fmax_mhz;
  EXPECT_DOUBLE_EQ(cost.fmax_mhz, std::min(f8, f32));
  ASSERT_EQ(cost.members.size(), 2u);
  // Member timing is evaluated at the composed (slowest) clock, so the fast
  // member's fps reflects the shared fabric, not its standalone fmax.
  EXPECT_GT(cost.member_timing(0).fps, 0.0);
}

TEST(Composition, LutBoundDesignNamesLutsAsBinding) {
  const Device tiny_luts{"tiny-luts", 4'000, 1'000'000, 10'000};
  Composition design;
  design.add(spec_of(512, 512, 8));  // ~5k LUTs > 4k budget
  const FitReport fit = design.fit(tiny_luts);
  EXPECT_FALSE(fit.fits);
  EXPECT_EQ(fit.binding_constraint, Constraint::Luts);
  EXPECT_LT(fit.headroom, 0.0);
  EXPECT_GT(fit.lut_utilization, 1.0);
}

TEST(Composition, BramBoundDesignNamesBramAsBinding) {
  const Device tiny_bram{"tiny-bram", 1'000'000, 1'000'000, 1};
  Composition design;
  design.add(spec_of(512, 512, 8));
  const FitReport fit = design.fit(tiny_bram);
  EXPECT_FALSE(fit.fits);
  EXPECT_EQ(fit.binding_constraint, Constraint::Bram);
}

TEST(Composition, InterconnectBindsWhenLogicIsAbundant) {
  // A hypothetical huge part: the shared fabric (28.8 effective bytes/cycle
  // at the default model) saturates at 14 pipelines x 2 B/cyc before any
  // logic class does.
  const Device huge{"huge", 10'000'000, 20'000'000, 100'000};
  const auto spec = spec_of(64, 64, 8);
  Composition design;
  const auto demand_cap = design.model().effective_bytes_per_cycle() / kPipelineBytesPerCycle;
  const auto saturating = static_cast<std::size_t>(demand_cap) + 1;
  for (std::size_t i = 0; i < saturating; ++i) design.add(spec);
  const FitReport fit = design.fit(huge);
  EXPECT_FALSE(fit.fits);
  EXPECT_EQ(fit.binding_constraint, Constraint::Interconnect);
  EXPECT_EQ(Composition::capacity(spec, huge), static_cast<std::size_t>(demand_cap));
}

TEST(Composition, RemoveReleasesTheMemberShare) {
  const auto spec = spec_of(64, 64, 8);
  const std::size_t cap = Composition::capacity(spec, kXC7Z020);
  ASSERT_GT(cap, 0u);

  Composition design;
  std::vector<Composition::MemberId> ids;
  for (std::size_t i = 0; i < cap; ++i) ids.push_back(design.add(spec));
  EXPECT_TRUE(design.fit(kXC7Z020).fits);

  const auto over = design.add(spec);
  EXPECT_FALSE(design.fit(kXC7Z020).fits);
  design.remove(over);
  EXPECT_TRUE(design.fit(kXC7Z020).fits);
  EXPECT_EQ(design.size(), cap);

  design.remove(987'654'321);  // unknown ids are ignored (close/reject races)
  EXPECT_EQ(design.size(), cap);

  design.remove(ids.front());
  EXPECT_EQ(design.size(), cap - 1);
  EXPECT_TRUE(design.fit(kXC7Z020).fits);
}

TEST(Composition, CapacityIsTheLargestFittingCount) {
  const auto spec = spec_of(64, 64, 8);
  const std::size_t cap = Composition::capacity(spec, kXC7Z020);
  ASSERT_GT(cap, 0u);

  Composition at_cap;
  for (std::size_t i = 0; i < cap; ++i) at_cap.add(spec);
  EXPECT_TRUE(at_cap.fit(kXC7Z020).fits);
  at_cap.add(spec);
  EXPECT_FALSE(at_cap.fit(kXC7Z020).fits);
}

TEST(Composition, CapacityIsZeroWhenOnePipelineExceedsThePart) {
  // w128 overall logic exceeds the XC7Z020 (the "-" rows of the paper's
  // resource tables): even a single pipeline must not fit.
  const auto spec = spec_of(512, 512, 128);
  Composition design;
  design.add(spec);
  ASSERT_FALSE(design.fit(kXC7Z020).fits);
  EXPECT_EQ(Composition::capacity(spec, kXC7Z020), 0u);
}

TEST(Composition, AddRejectsInvalidGeometry) {
  Composition design;
  EXPECT_THROW(design.add(spec_of(512, 512, 7)), std::invalid_argument);   // odd window
  EXPECT_THROW(design.add(spec_of(32, 32, 64)), std::invalid_argument);    // image < window
  EXPECT_EQ(design.size(), 0u);
}

TEST(Composition, HeadroomIsTheFreeFractionOfTheBindingResource) {
  Composition design;
  design.add(spec_of(512, 512, 8));
  const FitReport fit = design.fit(kXC7Z020);
  ASSERT_TRUE(fit.fits);
  const double worst = std::max({fit.lut_utilization, fit.register_utilization,
                                 fit.bram_utilization, fit.interconnect_utilization});
  EXPECT_DOUBLE_EQ(fit.headroom, 1.0 - worst);
  EXPECT_EQ(fit.binding_constraint, Constraint::Luts);  // logic binds for w8
}

TEST(ResourceEstimateFits, ChecksEveryHardResourceClass) {
  // Regression: fits() used to ignore bram18k entirely.
  ResourceEstimate e;
  e.luts = 100;
  e.registers = 100;
  e.bram18k = kXC7Z020.bram18k + 1;
  EXPECT_FALSE(e.fits(kXC7Z020));
  e.bram18k = kXC7Z020.bram18k;
  EXPECT_TRUE(e.fits(kXC7Z020));
  e.luts = kXC7Z020.luts + 1;
  EXPECT_FALSE(e.fits(kXC7Z020));
}

TEST(Device, LookupByName) {
  const Device* dev = device_by_name("XC7Z020");
  ASSERT_NE(dev, nullptr);
  EXPECT_EQ(dev->luts, kXC7Z020.luts);
  EXPECT_EQ(device_by_name("XC7Z999"), nullptr);
  EXPECT_EQ(device_by_name(nullptr), nullptr);
}

}  // namespace
}  // namespace swc::resources

#include "resources/estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

namespace swc::resources {
namespace {

using Estimator = std::function<ResourceEstimate(std::size_t)>;

double pct_error(std::size_t model, std::size_t paper) {
  return 100.0 * std::abs(static_cast<double>(model) - static_cast<double>(paper)) /
         static_cast<double>(paper);
}

void expect_table_within(const Estimator& estimate, const PaperRow* rows, std::size_t count,
                         double lut_tol, double ff_tol) {
  for (std::size_t i = 0; i < count; ++i) {
    if (rows[i].luts == 0) continue;  // "-" rows (exceeds device)
    const ResourceEstimate est = estimate(rows[i].window);
    EXPECT_LE(pct_error(est.luts, rows[i].luts), lut_tol)
        << "window " << rows[i].window << ": model " << est.luts << " vs paper " << rows[i].luts;
    EXPECT_LE(pct_error(est.registers, rows[i].registers), ff_tol)
        << "window " << rows[i].window << ": model " << est.registers << " vs paper "
        << rows[i].registers;
    EXPECT_DOUBLE_EQ(est.fmax_mhz, rows[i].fmax_mhz);
  }
}

TEST(Estimator, IwtLutsMatchPaperExactly) {
  std::size_t count = 0;
  const PaperRow* rows = paper_iwt_table(count);
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(estimate_iwt(rows[i].window).luts, rows[i].luts);
  }
}

TEST(Estimator, IwtRegistersWithinOnePercent) {
  std::size_t count = 0;
  const PaperRow* rows = paper_iwt_table(count);
  expect_table_within(estimate_iwt, rows, count, 0.0, 1.0);
}

TEST(Estimator, IiwtLutsMatchPaperExactly) {
  std::size_t count = 0;
  const PaperRow* rows = paper_iiwt_table(count);
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(estimate_iiwt(rows[i].window).luts, rows[i].luts);
  }
}

TEST(Estimator, IiwtRegistersWithinThreePercent) {
  std::size_t count = 0;
  const PaperRow* rows = paper_iiwt_table(count);
  expect_table_within(estimate_iiwt, rows, count, 0.0, 3.0);
}

TEST(Estimator, BitPackWithinTolerance) {
  std::size_t count = 0;
  const PaperRow* rows = paper_bitpack_table(count);
  expect_table_within(estimate_bitpack, rows, count, 5.0, 16.0);
}

TEST(Estimator, BitUnpackWithinTolerance) {
  std::size_t count = 0;
  const PaperRow* rows = paper_bitunpack_table(count);
  expect_table_within(estimate_bitunpack, rows, count, 4.0, 5.0);
}

TEST(Estimator, OverallWithinTolerance) {
  std::size_t count = 0;
  const PaperRow* rows = paper_overall_table(count);
  expect_table_within(estimate_overall, rows, count, 3.0, 4.0);
}

TEST(Estimator, BitUnpackIsTheLutHotspot) {
  // Paper Section V-E: Bit Unpacking dominates LUTs at every window size.
  for (const std::size_t n : {8u, 16u, 32u, 64u, 128u}) {
    const auto unpack = estimate_bitunpack(n).luts;
    EXPECT_GT(unpack, estimate_bitpack(n).luts);
    EXPECT_GT(unpack, estimate_iwt(n).luts);
    EXPECT_GT(unpack, estimate_iiwt(n).luts);
  }
}

TEST(Estimator, Window128ExceedsDeviceWindow64Fits) {
  // Table X: window 64 is 67% of the XC7Z020; window 128 prints "-".
  EXPECT_TRUE(estimate_overall(64).fits(kXC7Z020));
  EXPECT_FALSE(estimate_overall(128).fits(kXC7Z020));
}

TEST(Estimator, LutGrowthIsLinearInWindow) {
  for (const auto& estimate :
       {Estimator(estimate_iwt), Estimator(estimate_bitpack), Estimator(estimate_bitunpack),
        Estimator(estimate_iiwt), Estimator(estimate_overall)}) {
    const auto a = estimate(16);
    const auto b = estimate(32);
    const auto c = estimate(64);
    // Second difference of a linear function is zero.
    EXPECT_EQ((c.luts - b.luts), 2 * (b.luts - a.luts) - (b.luts - a.luts) * 0)
        << "not linear";
    EXPECT_EQ(c.luts - b.luts, 2 * (b.luts - a.luts));
  }
}

TEST(Estimator, FmaxHierarchyMatchesPaper) {
  // IWT/IIWT fastest, BitUnpack slowest block, system slower still.
  const double iwt = estimate_iwt(8).fmax_mhz;
  const double pack = estimate_bitpack(8).fmax_mhz;
  const double unpack = estimate_bitunpack(8).fmax_mhz;
  const double overall = estimate_overall(8).fmax_mhz;
  EXPECT_GT(iwt, pack);
  EXPECT_GT(pack, unpack);
  EXPECT_GT(unpack, overall);
}

TEST(Estimator, RejectsBadWindows) {
  EXPECT_THROW((void)estimate_iwt(7), std::invalid_argument);
  EXPECT_THROW((void)estimate_overall(0), std::invalid_argument);
}

TEST(Device, UtilisationPercentages) {
  EXPECT_NEAR(lut_percent(kXC7Z020, 53'200), 100.0, 1e-9);
  EXPECT_NEAR(register_percent(kXC7Z020, 53'200), 50.0, 1e-9);
  // Paper Table X: window 64 overall = 67% of LUTs.
  EXPECT_NEAR(lut_percent(kXC7Z020, estimate_overall(64).luts), 67.0, 2.0);
}

}  // namespace
}  // namespace swc::resources

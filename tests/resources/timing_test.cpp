#include "resources/timing.hpp"

#include <gtest/gtest.h>

namespace swc::resources {
namespace {

TEST(Timing, FrameRateIsFmaxOverPixels) {
  const core::SlidingWindowSpec spec{512, 512, 8};
  const FrameTiming t = frame_timing(spec, 230.3);
  EXPECT_EQ(t.cycles_per_frame, 512u * 512u);
  EXPECT_NEAR(t.fps, 230.3e6 / (512.0 * 512.0), 1e-6);
  EXPECT_GT(t.fps, 800.0);  // 512p is easily real-time at 230 MHz
}

TEST(Timing, FillLatencyMatchesFirstValidWindow) {
  const core::SlidingWindowSpec spec{512, 512, 8};
  const FrameTiming t = frame_timing(spec, 100.0);
  EXPECT_EQ(t.fill_cycles, 7u * 512u + 8u);
  EXPECT_NEAR(t.fill_latency_us, static_cast<double>(7 * 512 + 8) / 100.0, 1e-9);
}

TEST(Timing, ProposedArchitectureIsRealTimeAtHd) {
  // 2048x2048 at the Table X system Fmax (230.3 MHz): ~55 fps.
  const core::SlidingWindowSpec spec{2048, 2048, 64};
  const FrameTiming t = proposed_frame_timing(spec);
  EXPECT_NEAR(t.fmax_mhz, 230.3, 1e-9);
  EXPECT_GT(t.fps, 30.0);
  EXPECT_LT(t.fps, 120.0);
}

TEST(Timing, LargerWindowsOnlyAffectLatencyNotRate) {
  const core::SlidingWindowSpec small{1024, 1024, 8};
  const core::SlidingWindowSpec large{1024, 1024, 64};
  const FrameTiming a = frame_timing(small, 230.3);
  const FrameTiming b = frame_timing(large, 230.3);
  EXPECT_DOUBLE_EQ(a.fps, b.fps);          // fully pipelined: rate is per pixel
  EXPECT_LT(a.fill_cycles, b.fill_cycles);  // only the fill latency grows
}

}  // namespace
}  // namespace swc::resources

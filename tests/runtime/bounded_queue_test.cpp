// Backpressure semantics of the runtime's bounded MPMC queue and the thread
// pool built on it: Reject fails fast at capacity, Block parks the producer
// until a consumer frees space, close() drains and wakes everyone.

#include "runtime/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>

#include "runtime/thread_pool.hpp"

namespace swc::runtime {
namespace {

TEST(BoundedQueue, TryPushRejectsAtCapacity) {
  BoundedQueue<int> q(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(q.try_push(a));
  EXPECT_TRUE(q.try_push(b));
  EXPECT_FALSE(q.try_push(c));
  EXPECT_EQ(c, 3);  // rejected item is left intact
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, PopReturnsFifoOrder) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 4; ++i) {
    const auto item = q.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
}

TEST(BoundedQueue, PushBlocksUntilSpaceFrees) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(2));  // must block: queue is full
    second_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(q.pop().value(), 1);  // frees the slot
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, CloseDrainsThenReturnsNullopt) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(7));
  q.close();
  EXPECT_FALSE(q.push(8));  // closed: push fails
  EXPECT_EQ(q.pop().value(), 7);  // pending item still drains
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, CloseWithBlockedProducerFailsThePush) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> push_result{true};
  std::thread producer([&] {
    int item = 2;
    push_result = q.push(std::move(item));  // blocks on the full queue
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();  // wakes the parked producer, which must observe failure
  producer.join();
  EXPECT_FALSE(push_result.load());
  // The item from before close still drains; the blocked one never entered.
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, PopAfterShutdownDrainsBacklogThenReportsClosed) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(q.push(i));
  q.close();
  for (int i = 0; i < 3; ++i) {
    const auto item = q.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);  // FIFO preserved across close
  }
  // Every further pop — including repeated ones — reports closed-and-empty.
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, TryPushOutcomeDistinguishesFullFromClosed) {
  BoundedQueue<int> q(1);
  int item = 1;
  EXPECT_EQ(q.try_push_outcome(item), PushOutcome::Ok);
  int rejected = 2;
  EXPECT_EQ(q.try_push_outcome(rejected), PushOutcome::Full);
  EXPECT_EQ(rejected, 2);  // rejected item left intact for the caller
  q.close();
  int after_close = 3;
  EXPECT_EQ(q.try_push_outcome(after_close), PushOutcome::Closed);
  // A full-but-closed queue reports Closed, not Full: retrying is hopeless
  // and the caller must not wait for space that will never come.
  EXPECT_EQ(q.pop().value(), 1);
}

TEST(BoundedQueue, RecordsHighWaterMark) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.pop().has_value());
  ASSERT_TRUE(q.push(99));
  EXPECT_EQ(q.high_water(), 5u);
}

// Deterministic pool backpressure: one worker parked on a gate job, queue of
// capacity 2 filled, third submission must behave per policy.
TEST(ThreadPool, RejectPolicyFailsFastWhenSaturated) {
  ThreadPool pool(1, 2);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<bool> started{false};
  ASSERT_TRUE(pool.submit([&, opened] {
    started = true;
    opened.wait();
  }));
  while (!started) std::this_thread::yield();  // worker now holds the gate job

  ASSERT_TRUE(pool.submit([] {}, SubmitPolicy::Reject));
  ASSERT_TRUE(pool.submit([] {}, SubmitPolicy::Reject));
  // Queue full, worker busy: Reject must fail without blocking.
  EXPECT_FALSE(pool.submit([] {}, SubmitPolicy::Reject));

  gate.set_value();
  pool.wait_idle();
  // After draining, submissions are accepted again.
  EXPECT_TRUE(pool.submit([] {}, SubmitPolicy::Reject));
  pool.wait_idle();
}

TEST(ThreadPool, BlockPolicyWaitsForSpace) {
  ThreadPool pool(1, 1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<bool> started{false};
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.submit([&, opened] {
    started = true;
    opened.wait();
  }));
  while (!started) std::this_thread::yield();
  ASSERT_TRUE(pool.submit([&] { ++ran; }));  // fills the queue

  std::atomic<bool> blocked_submit_returned{false};
  std::thread producer([&] {
    EXPECT_TRUE(pool.submit([&] { ++ran; }, SubmitPolicy::Block));
    blocked_submit_returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(blocked_submit_returned.load());  // backpressure is holding it

  gate.set_value();
  producer.join();
  pool.wait_idle();
  EXPECT_TRUE(blocked_submit_returned.load());
  EXPECT_EQ(ran.load(), 2);
  EXPECT_GE(pool.queue_high_water(), 1u);
}

TEST(ThreadPool, WaitIdleIsACompletionBarrier) {
  ThreadPool pool(4, 16);
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(pool.submit([&] { ++done; }));
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 32);
  const auto util = pool.worker_utilization();
  EXPECT_EQ(util.size(), 4u);
  for (const double u : util) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(ThreadPool, SubmitAfterShutdownFails) {
  ThreadPool pool(2, 4);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

}  // namespace
}  // namespace swc::runtime

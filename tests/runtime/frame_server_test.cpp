// FrameServer behavior: multi-stream dispatch correctness, per-stream stats,
// backpressure accounting, striped submission, and input validation.

#include "runtime/frame_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/streaming_engine.hpp"
#include "image/synthetic.hpp"

namespace swc::runtime {
namespace {

core::EngineConfig make_config(std::size_t w, std::size_t h, std::size_t n, int threshold = 0) {
  core::EngineConfig config;
  config.spec = {w, h, n};
  config.codec.threshold = threshold;
  return config;
}

TEST(FrameServer, CompressedStreamReproducesSingleThreadedOutput) {
  FrameServer server({.workers = 3, .queue_capacity = 16});
  const auto config = make_config(32, 24, 4);
  const auto id = server.open_stream({.name = "cam0", .kind = EngineKind::Compressed,
                                      .engine = config});

  const auto frame = image::make_natural_image(32, 24, {.seed = 5});
  const auto expected = core::roundtrip_image(frame, config);

  std::mutex results_mutex;
  std::vector<FrameResult> results;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(server.submit(id, frame, SubmitPolicy::Block, [&](FrameResult r) {
      std::lock_guard lock(results_mutex);
      results.push_back(std::move(r));
    }));
  }
  server.wait_idle();

  ASSERT_EQ(results.size(), 6u);
  for (const auto& r : results) {
    EXPECT_EQ(r.stream_id, id);
    EXPECT_EQ(r.reconstructed, expected);
    EXPECT_EQ(r.reconstructed, frame);  // threshold 0: lossless
    EXPECT_GT(r.latency_ns, 0u);
    EXPECT_EQ(r.stats.windows_emitted(), (32u - 4 + 1) * (24u - 4 + 1));
  }

  const auto stats = server.stats();
  EXPECT_EQ(stats.frames_submitted, 6u);
  EXPECT_EQ(stats.frames_completed, 6u);
  EXPECT_EQ(stats.frames_rejected, 0u);
  ASSERT_EQ(stats.streams.size(), 1u);
  EXPECT_EQ(stats.streams[0].frames_completed, 6u);
  EXPECT_EQ(stats.streams[0].pixels_processed, 6u * 32 * 24);
  EXPECT_GT(stats.streams[0].payload_bits(), 0u);
  EXPECT_GT(stats.streams[0].latency.mean_ms(), 0.0);
  EXPECT_LE(stats.streams[0].latency.min_ms(), stats.streams[0].latency.max_ms());
}

TEST(FrameServer, StreamsAreIndependent) {
  FrameServer server({.workers = 4, .queue_capacity = 32});
  const auto small = make_config(16, 16, 4);
  const auto large = make_config(32, 32, 8, /*threshold=*/2);
  const auto a = server.open_stream({.name = "a", .kind = EngineKind::Compressed, .engine = small});
  const auto b = server.open_stream({.name = "b", .kind = EngineKind::Compressed, .engine = large});
  const auto t =
      server.open_stream({.name = "t", .kind = EngineKind::Traditional, .engine = small});

  const auto frame_a = image::make_natural_image(16, 16, {.seed = 1});
  const auto frame_b = image::make_natural_image(32, 32, {.seed = 2});
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(server.submit(a, frame_a));
    ASSERT_TRUE(server.submit(b, frame_b));
    ASSERT_TRUE(server.submit(t, frame_a));
  }
  server.wait_idle();

  const auto stats = server.stats();
  ASSERT_EQ(stats.streams.size(), 3u);
  EXPECT_EQ(stats.frames_completed, 12u);
  EXPECT_EQ(stats.streams[a].frames_completed, 4u);
  EXPECT_EQ(stats.streams[b].frames_completed, 4u);
  EXPECT_EQ(stats.streams[t].frames_completed, 4u);
  // Traditional streams count windows but carry no codec traffic.
  EXPECT_GT(stats.streams[t].windows_emitted(), 0u);
  EXPECT_EQ(stats.streams[t].payload_bits(), 0u);
  EXPECT_GT(stats.streams[b].payload_bits(), 0u);
}

TEST(FrameServer, TraditionalResultHasNoReconstructedImage) {
  FrameServer server({.workers = 1, .queue_capacity = 4});
  const auto config = make_config(16, 16, 4);
  const auto id =
      server.open_stream({.name = "trad", .kind = EngineKind::Traditional, .engine = config});
  std::promise<FrameResult> promise;
  auto future = promise.get_future();
  ASSERT_TRUE(server.submit(id, image::make_gradient_image(16, 16), SubmitPolicy::Block,
                            [&](FrameResult r) { promise.set_value(std::move(r)); }));
  const auto result = future.get();
  EXPECT_TRUE(result.reconstructed.empty());
  EXPECT_EQ(result.stats.windows_emitted(), (16u - 4 + 1) * (16u - 4 + 1));
}

TEST(FrameServer, KeepOutputFalseDropsReconstructedFrames) {
  FrameServer server({.workers = 1, .queue_capacity = 4});
  const auto config = make_config(16, 16, 4);
  const auto id = server.open_stream({.name = "drop", .kind = EngineKind::Compressed,
                                      .engine = config, .keep_output = false});
  std::promise<FrameResult> promise;
  auto future = promise.get_future();
  ASSERT_TRUE(server.submit(id, image::make_gradient_image(16, 16), SubmitPolicy::Block,
                            [&](FrameResult r) { promise.set_value(std::move(r)); }));
  const auto result = future.get();
  EXPECT_TRUE(result.reconstructed.empty());
  EXPECT_GT(result.stats.windows_emitted(), 0u);
}

TEST(FrameServer, RejectPolicyCountsDropsPerStream) {
  // One worker parked behind a gating callback, queue of capacity 1 filled:
  // the next Reject submission must fail and be charged to the stream.
  FrameServer server({.workers = 1, .queue_capacity = 1});
  const auto config = make_config(16, 16, 4);
  const auto id = server.open_stream({.name = "gated", .kind = EngineKind::Compressed,
                                      .engine = config, .keep_output = false});
  const auto frame = image::make_gradient_image(16, 16);

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<bool> first_running{false};
  ASSERT_TRUE(server.submit(id, frame, SubmitPolicy::Block, [&, opened](FrameResult) {
    first_running = true;
    opened.wait();
  }));
  while (!first_running) std::this_thread::yield();

  ASSERT_TRUE(server.submit(id, frame, SubmitPolicy::Reject));   // fills the queue
  EXPECT_FALSE(server.submit(id, frame, SubmitPolicy::Reject));  // must drop
  gate.set_value();
  server.wait_idle();

  const auto stats = server.stats();
  EXPECT_EQ(stats.streams[id].frames_rejected, 1u);
  EXPECT_EQ(stats.streams[id].frames_completed, 2u);
  EXPECT_EQ(stats.frames_submitted, 2u);
  EXPECT_GE(stats.queue_high_water, 1u);
}

TEST(FrameServer, StripedSubmissionMatchesWholeFrame) {
  FrameServer server({.workers = 4, .queue_capacity = 8});
  const auto config = make_config(64, 64, 8);
  const auto id =
      server.open_stream({.name = "big", .kind = EngineKind::Compressed, .engine = config});
  const auto frame = image::make_natural_image(64, 64, {.seed = 13});

  const auto result = server.submit_striped(id, frame, 8);
  EXPECT_EQ(result.reconstructed, core::roundtrip_image(frame, config));
  EXPECT_EQ(result.reconstructed, frame);
  EXPECT_EQ(result.stats.windows_emitted(), (64u - 8 + 1) * (64u - 8 + 1));

  const auto stats = server.stats();
  EXPECT_EQ(stats.streams[id].frames_completed, 1u);  // one frame, many stripes
  EXPECT_GT(stats.streams[id].latency.max_ms(), 0.0);
}

TEST(FrameServer, ValidatesStreamIdAndGeometry) {
  FrameServer server({.workers = 1, .queue_capacity = 4});
  const auto config = make_config(16, 16, 4);
  const auto id =
      server.open_stream({.name = "v", .kind = EngineKind::Compressed, .engine = config});
  // Unknown ids are a reportable outcome, not an exception: with concurrent
  // close_stream() a stale id is a race, and races must not throw.
  const auto receipt = server.submit_frame(id + 1, image::make_gradient_image(16, 16));
  EXPECT_FALSE(receipt.accepted());
  EXPECT_EQ(receipt.error, SubmitError::UnknownStream);
  // Geometry mismatch against an open stream is still a caller bug.
  EXPECT_THROW((void)server.submit(id, image::make_gradient_image(16, 8)), std::invalid_argument);
  const auto trad =
      server.open_stream({.name = "t", .kind = EngineKind::Traditional, .engine = config});
  EXPECT_THROW((void)server.submit_striped(trad, image::make_gradient_image(16, 16), 2),
               std::invalid_argument);
  EXPECT_THROW((void)server.submit_striped(trad + 7, image::make_gradient_image(16, 16), 2),
               std::invalid_argument);
}

TEST(FrameServer, CloseStreamRetiresSlotAndReusesId) {
  FrameServer server({.workers = 1, .queue_capacity = 4});
  const auto config = make_config(16, 16, 4);
  const auto a =
      server.open_stream({.name = "a", .kind = EngineKind::Compressed, .engine = config});
  const auto b =
      server.open_stream({.name = "b", .kind = EngineKind::Compressed, .engine = config});
  EXPECT_EQ(server.active_streams(), 2u);

  EXPECT_TRUE(server.close_stream(a));
  EXPECT_FALSE(server.close_stream(a));  // already closed
  EXPECT_FALSE(server.close_stream(b + 100));
  EXPECT_EQ(server.active_streams(), 1u);

  // Submissions to the retired id fail loudly, the live stream still works.
  EXPECT_EQ(server.submit_frame(a, image::make_gradient_image(16, 16)).error,
            SubmitError::UnknownStream);
  EXPECT_TRUE(server.submit(b, image::make_gradient_image(16, 16)));
  server.wait_idle();

  // Closed stats disappear from the snapshot; the slot table stays bounded.
  const auto snap = server.stats();
  ASSERT_EQ(snap.streams.size(), 1u);
  EXPECT_EQ(snap.streams[0].name, "b");

  const auto reused =
      server.open_stream({.name = "a2", .kind = EngineKind::Compressed, .engine = config});
  EXPECT_EQ(reused, a);
  EXPECT_EQ(server.stream_slots(), 2u);
  EXPECT_TRUE(server.submit(reused, image::make_gradient_image(16, 16)));
  server.wait_idle();
}

TEST(FrameServer, ReentrantEngineProducesIdenticalResultsAcrossThreads) {
  // The refactored const engines are the foundation of the runtime: hammer
  // one engine instance from several raw threads and require identical
  // output every time.
  const auto config = make_config(24, 20, 4);
  const core::CompressedEngine engine(config);
  const auto frame = image::make_natural_image(24, 20, {.seed = 9});
  const auto expected = core::roundtrip_image(frame, config);

  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        const auto result = engine.run_reentrant(
            frame, [](std::size_t, std::size_t, const core::WindowView&) {});
        if (!(result.reconstructed == expected)) ++mismatches;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace swc::runtime

// TSan regression gate for the StreamContext rate-control path. The
// concurrency contract (see DESIGN.md "Concurrency contracts") is:
// rate_enabled_ is immutable after construction, the actuation threshold is
// a relaxed atomic, and the controller itself is touched only under
// rate_mutex_. The original code instead probed controller_.has_value()
// unlocked on the hot path and read controller_->converged() without the
// mutex — a race against observe_rate()'s controller mutation that TSan
// flags the moment pollers overlap in-flight frames. These tests hammer
// exactly that overlap; they run under the runtime_stress_tsan CTest entry
// (gtest_filter=RuntimeStress.*) with halt_on_error.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/rate_control.hpp"
#include "core/streaming_engine.hpp"
#include "image/synthetic.hpp"
#include "runtime/stream_context.hpp"

namespace swc::runtime {
namespace {

StreamConfig make_rate_config() {
  core::EngineConfig engine;
  engine.spec = {32, 32, 4};
  engine.codec.threshold = 8;
  core::RateControlConfig rate;
  rate.mode = core::RateControlMode::BitsPerPixel;
  rate.target = 1.5;
  rate.initial_threshold = 8;
  return {.name = "rate-stress",
          .kind = EngineKind::Compressed,
          .engine = engine,
          .keep_output = false,
          .rate = rate};
}

TEST(RuntimeStress, RateControlledContextConcurrentPollers) {
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kPollers = 2;
  constexpr std::size_t kFramesPerWorker = 24;

  const StreamContext ctx(1, make_rate_config());
  const auto frame = image::make_natural_image(32, 32, {.seed = 7});

  std::atomic<bool> stop{false};
  std::vector<std::thread> pollers;
  for (std::size_t p = 0; p < kPollers; ++p) {
    pollers.emplace_back([&] {
      // Race the controller's observe/actuate cycle with the read-side API.
      while (!stop.load(std::memory_order_acquire)) {
        (void)ctx.rate_converged();
        EXPECT_GE(ctx.rate_threshold(), 0);
        std::this_thread::yield();
      }
    });
  }

  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> processed{0};
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      for (std::size_t i = 0; i < kFramesPerWorker; ++i) {
        // Stack-local scratch overload: documented safe for concurrent
        // direct callers, each frame feeds observe_rate() under the mutex.
        const auto result = ctx.process(frame);
        processed.fetch_add(1, std::memory_order_relaxed);
        (void)result;
      }
    });
  }

  for (auto& t : workers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : pollers) t.join();

  EXPECT_EQ(processed.load(), kWorkers * kFramesPerWorker);
  // The controller observed every frame; its threshold is a sane actuation.
  EXPECT_GE(ctx.rate_threshold(), 0);
  EXPECT_LE(ctx.rate_threshold(), 255);
}

TEST(RuntimeStress, RateDisabledContextConcurrentPollers) {
  // Control: without a rate config the same API surface must stay race-free
  // (rate_threshold() falls back to the static codec threshold).
  StreamConfig config = make_rate_config();
  config.rate.reset();
  const StreamContext ctx(2, config);
  const auto frame = image::make_natural_image(32, 32, {.seed = 9});

  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load(std::memory_order_acquire)) {
      EXPECT_FALSE(ctx.rate_converged());
      EXPECT_EQ(ctx.rate_threshold(), 8);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < 2; ++w) {
    workers.emplace_back([&] {
      for (std::size_t i = 0; i < 8; ++i) (void)ctx.process(frame);
    });
  }
  for (auto& t : workers) t.join();
  stop.store(true, std::memory_order_release);
  poller.join();
}

}  // namespace
}  // namespace swc::runtime

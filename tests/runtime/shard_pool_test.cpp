// Sharded-runtime suite (ctest -L shard): strand ordering, work stealing
// under skew, arena recycling across stream lifetimes, the 1-shard
// differential against a direct engine run, and a TSan-targeted stress
// mirroring runtime_stress. CMake adds dedicated ASan/TSan entries running
// this suite when the build is configured with -DSWC_SANITIZE.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "core/streaming_engine.hpp"
#include "image/synthetic.hpp"
#include "runtime/frame_server.hpp"
#include "runtime/shard_pool.hpp"

namespace swc::runtime {
namespace {

core::EngineConfig make_config(std::size_t w, std::size_t h, std::size_t n,
                               int threshold = 0) {
  core::EngineConfig config;
  config.spec = {w, h, n};
  config.codec.threshold = threshold;
  return config;
}

std::uint64_t total_steals(const ShardPool& pool) {
  std::uint64_t steals = 0;
  for (const auto& s : pool.shard_stats()) steals += s.steals;
  return steals;
}

// A stream's frames must complete in submission order even when the pool has
// several shards and idle workers steal the stream's strand token between
// frames: at most one frame of a stream runs at a time, and completions are
// published before the token reposts.
TEST(ShardPool, StreamCompletionsArriveInSubmitOrder) {
  constexpr std::uint64_t kFrames = 200;
  FrameServer server({.workers = 4, .queue_capacity = 64, .shards = 2, .pin_threads = false});
  const auto config = make_config(16, 16, 4);
  const auto id = server.open_stream(
      {.name = "ordered", .kind = EngineKind::Compressed, .engine = config, .keep_output = false});
  const auto frame = image::make_natural_image(16, 16, {.seed = 7});

  std::mutex order_mutex;
  std::vector<std::uint64_t> completion_order;
  for (std::uint64_t f = 0; f < kFrames; ++f) {
    ASSERT_TRUE(server.submit(id, frame, SubmitPolicy::Block, [&](FrameResult result) {
      std::unique_lock lock(order_mutex);
      completion_order.push_back(result.frame_seq);
    }));
  }
  server.wait_idle();

  ASSERT_EQ(completion_order.size(), kFrames);
  for (std::uint64_t f = 0; f < kFrames; ++f) {
    EXPECT_EQ(completion_order[f], f) << "completion " << f << " out of order";
  }
}

// 100:1 skew: both of shard 0's workers are wedged on blocker jobs while a
// hot strand homed on shard 0 holds 100 queued frames and shard 1 holds one.
// The only way the hot strand's work can finish is shard 1's workers
// stealing its token from shard 0's run queue — once per frame, because the
// token reposts to its home shard after every job.
TEST(ShardPool, IdleShardStealsFromBusyShardUnderSkew) {
  constexpr std::uint64_t kHotJobs = 100;
  ShardPool pool({.workers = 4, .queue_capacity = 256, .shards = 2, .pin_threads = false});
  ASSERT_EQ(pool.shard_count(), 2u);

  std::atomic<bool> release{false};
  std::atomic<std::uint64_t> quick_done{0};

  // Wedge shard 0: one blocker per shard-0 worker, on distinct strands so
  // both run simultaneously.
  for (int b = 0; b < 2; ++b) {
    auto blocker = pool.make_strand(0);
    ASSERT_TRUE(pool.submit(blocker, [&] {
      while (!release.load(std::memory_order_acquire)) std::this_thread::yield();
    }));
  }

  auto hot = pool.make_strand(0);
  ASSERT_EQ(hot->home_shard(), 0u);
  for (std::uint64_t j = 0; j < kHotJobs; ++j) {
    ASSERT_TRUE(pool.submit(hot, [&] { ++quick_done; }));
  }
  auto cold = pool.make_strand(1);
  ASSERT_EQ(cold->home_shard(), 1u);
  ASSERT_TRUE(pool.submit(cold, [&] { ++quick_done; }));

  // All quick jobs must drain while the blockers still wedge two workers —
  // the load only balances if idle workers steal across the shard boundary.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (quick_done.load() < kHotJobs + 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "stealing never happened";
    std::this_thread::yield();
  }
  release.store(true, std::memory_order_release);
  pool.wait_idle();

  const auto stats = pool.shard_stats();
  ASSERT_EQ(stats.size(), 2u);
  // In the common interleaving shard 0's own workers pick up the blockers
  // and shard 1 steals the hot token once per frame (~100 steals). A shard-1
  // worker may instead steal a blocker before shard 0 wakes; even then the
  // blocker itself crossed the shard boundary, so at least one steal is the
  // interleaving-independent invariant.
  EXPECT_GE(total_steals(pool), 1u);
  std::uint64_t executed = 0;
  for (const auto& s : stats) executed += s.executed;
  EXPECT_EQ(executed, kHotJobs + 3);  // 100 hot + 1 cold + 2 blockers
}

// Arena buffers outlive the stream that produced them: frames recycled while
// stream A was open must be handed back out (no fresh allocation) to a
// stream B opened after A closed.
TEST(ShardPool, ArenaRecyclesPayloadsAcrossStreamLifetimes) {
  FrameServer server({.workers = 2, .queue_capacity = 16, .shards = 1, .pin_threads = false});
  const auto config = make_config(32, 32, 4);
  const auto frame = image::make_natural_image(32, 32, {.seed = 3});

  const auto stream_a = server.open_stream(
      {.name = "a", .kind = EngineKind::Compressed, .engine = config, .keep_output = false});
  for (int f = 0; f < 8; ++f) {
    auto payload = server.acquire_frame(stream_a);
    ASSERT_EQ(payload.width(), 32u);
    ASSERT_EQ(payload.height(), 32u);
    std::copy(frame.pixels().begin(), frame.pixels().end(), payload.pixels().begin());
    ASSERT_TRUE(server.submit(stream_a, std::move(payload), SubmitPolicy::Block));
  }
  server.wait_idle();

  auto stats = server.stats();
  ASSERT_EQ(stats.shards.size(), 1u);
  const auto after_a = stats.shards[0].arena;
  EXPECT_GE(after_a.recycled, 8u) << "processed payloads must return to the arena";

  ASSERT_TRUE(server.close_stream(stream_a));
  const auto stream_b = server.open_stream(
      {.name = "b", .kind = EngineKind::Compressed, .engine = config, .keep_output = false});

  auto reused = server.acquire_frame(stream_b);
  ASSERT_EQ(reused.size(), frame.size());
  stats = server.stats();
  const auto after_b = stats.shards[0].arena;
  EXPECT_GT(after_b.reuses, after_a.reuses)
      << "a stream opened after close_stream must draw from the recycled pool";
  ASSERT_TRUE(server.submit(stream_b, std::move(reused), SubmitPolicy::Block));
  server.wait_idle();
}

// The 1-shard pool must be behaviorally identical to the pre-shard global
// queue: same reconstruction bits, same window counts as a direct reentrant
// engine run, at lossless and lossy thresholds alike.
TEST(ShardPool, SingleShardMatchesDirectEngineBitExactly) {
  for (const int threshold : {0, 2}) {
    const auto config = make_config(40, 40, 8, threshold);
    const core::CompressedEngine direct(config);
    const auto frame = image::make_natural_image(40, 40, {.seed = 11});
    const auto expected = direct.run_reentrant(
        frame, [](std::size_t, std::size_t, const core::WindowView&) {});

    FrameServer server({.workers = 4, .queue_capacity = 8, .shards = 1, .pin_threads = false});
    ASSERT_EQ(server.shard_count(), 1u);
    const auto id = server.open_stream(
        {.name = "diff", .kind = EngineKind::Compressed, .engine = config});

    std::mutex result_mutex;
    std::vector<core::CompressedRunResult> results(4);
    for (int f = 0; f < 4; ++f) {
      ASSERT_TRUE(server.submit(id, frame, SubmitPolicy::Block, [&, f](FrameResult r) {
        std::unique_lock lock(result_mutex);
        results[f] = {std::move(r.reconstructed), std::move(r.stats)};
      }));
    }
    server.wait_idle();

    for (const auto& result : results) {
      EXPECT_EQ(result.reconstructed, expected.reconstructed)
          << "threshold " << threshold << ": sharded run diverged from direct engine";
      EXPECT_EQ(result.stats.windows_emitted(), expected.stats.windows_emitted());
    }
  }
}

// TSan-targeted stress mirroring RuntimeStress.ManySmallFramesAcrossEight-
// Workers on the sharded pool: several producers over strands on forced
// shards, a stats poller racing the workers (shard_stats + utilization +
// aggregate queue probes), striped submissions mixed in, and conservation
// asserts at the end. No sleeps, no timing assumptions.
TEST(ShardPoolStress, SkewedProducersWithLiveStatsPoller) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kFramesPerProducer = 40;

  FrameServer server({.workers = 8, .queue_capacity = 32, .shards = 2, .pin_threads = false});
  const auto config = make_config(16, 16, 4);
  const auto frame = image::make_natural_image(16, 16, {.seed = 42});
  const auto big = make_config(48, 48, 8);
  const auto big_frame = image::make_natural_image(48, 48, {.seed = 2});

  // Skewed placement: every producer stream is hinted onto shard 0, the
  // striped stream onto shard 1 — stealing and cross-shard stats run hot.
  std::vector<std::uint32_t> stream_ids;
  for (std::size_t i = 0; i < kProducers; ++i) {
    stream_ids.push_back(server.open_stream({.name = "s" + std::to_string(i),
                                             .kind = EngineKind::Compressed,
                                             .engine = config,
                                             .keep_output = false,
                                             .shard_hint = 0}));
  }
  const auto big_id = server.open_stream(
      {.name = "big", .kind = EngineKind::Compressed, .engine = big, .shard_hint = 1});

  std::atomic<std::uint64_t> callbacks{0};
  std::atomic<bool> stop_polling{false};
  std::thread poller([&] {
    while (!stop_polling.load()) {
      const auto snap = server.stats();
      EXPECT_LE(snap.frames_completed, snap.frames_submitted);
      EXPECT_EQ(snap.shards.size(), server.shard_count());
      for (const auto& shard : snap.shards) {
        EXPECT_LE(shard.queue_depth, shard.queue_capacity);
        for (const double u : shard.worker_utilization) {
          EXPECT_GE(u, 0.0);
          EXPECT_LE(u, 1.0);
        }
      }
      (void)server.queue_depth();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t f = 0; f < kFramesPerProducer; ++f) {
        EXPECT_TRUE(server.submit(stream_ids[p], frame, SubmitPolicy::Block,
                                  [&](FrameResult) { ++callbacks; }));
      }
    });
  }
  for (int i = 0; i < 4; ++i) {
    const auto result = server.submit_striped(big_id, big_frame, 8);
    EXPECT_EQ(result.reconstructed, big_frame);
  }
  for (auto& t : producers) t.join();
  server.wait_idle();
  stop_polling = true;
  poller.join();

  const auto stats = server.stats();
  const std::uint64_t expected = kProducers * kFramesPerProducer;
  EXPECT_EQ(callbacks.load(), expected);
  EXPECT_EQ(stats.frames_completed, expected + 4);  // striped frames count too
  EXPECT_EQ(stats.frames_rejected, 0u);
  std::uint64_t per_stream = 0;
  for (const auto& s : stats.streams) per_stream += s.frames_completed;
  EXPECT_EQ(per_stream, expected + 4);
}

// Shutdown with queued strand tokens: every accepted job still executes
// (drain-in-place), and the pool joins cleanly with producers racing it.
TEST(ShardPoolStress, ShutdownDrainsEveryAcceptedJob) {
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> executed{0};
    {
      ShardPool pool({.workers = 3, .queue_capacity = 64, .shards = 2, .pin_threads = false});
      std::vector<std::thread> producers;
      for (int p = 0; p < 3; ++p) {
        producers.emplace_back([&, p] {
          auto strand = pool.make_strand(static_cast<std::size_t>(p));
          for (int j = 0; j < 50; ++j) {
            if (pool.submit(strand, [&] { ++executed; }, SubmitPolicy::Block)) ++accepted;
          }
        });
      }
      for (auto& t : producers) t.join();
      pool.shutdown();
    }
    EXPECT_EQ(executed.load(), accepted.load()) << "accepted jobs lost at shutdown";
  }
}

// Sanity on the steal counter's monotonic aggregation (used by telemetry).
TEST(ShardPool, StealAndParkCountersAggregate) {
  ShardPool pool({.workers = 2, .queue_capacity = 8, .shards = 2, .pin_threads = false});
  auto strand = pool.make_strand(0);
  for (int j = 0; j < 16; ++j) {
    ASSERT_TRUE(pool.submit(strand, [] {}));
  }
  pool.wait_idle();
  const auto stats = pool.shard_stats();
  std::uint64_t executed = 0;
  for (const auto& s : stats) executed += s.executed;
  EXPECT_EQ(executed, 16u);
  EXPECT_EQ(total_steals(pool), stats[0].steals + stats[1].steals);
}

}  // namespace
}  // namespace swc::runtime

// Stream lifecycle under churn: open/submit/close/reopen hammered from
// several threads must keep the server's slot table bounded (ids are
// recycled, closed slots are nulled) and never crash on stale ids. The
// sanitizer CTest entries (stream_lifecycle_tsan / stream_lifecycle_asan)
// run this suite with halt-on-first-report, which is the leak/race gate the
// close_stream() fix is held to.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "image/synthetic.hpp"
#include "runtime/frame_server.hpp"

namespace swc::runtime {
namespace {

core::EngineConfig make_config(std::size_t w, std::size_t h, std::size_t n) {
  core::EngineConfig config;
  config.spec = {w, h, n};
  return config;
}

TEST(StreamLifecycle, SlotTableStaysBoundedAcrossManyCycles) {
  // 10k sequential open/close cycles: the slot table must stay at one entry
  // (every cycle reuses id 0), not grow one StreamContext per cycle.
  FrameServer server({.workers = 2, .queue_capacity = 8});
  const auto config = make_config(16, 16, 4);
  const auto frame = image::make_gradient_image(16, 16);
  for (int cycle = 0; cycle < 10000; ++cycle) {
    const auto id = server.open_stream(
        {.name = "cycle", .kind = EngineKind::Compressed, .engine = config});
    EXPECT_EQ(id, 0u);
    if (cycle % 100 == 0) {
      EXPECT_TRUE(server.submit(id, frame));
    }
    EXPECT_TRUE(server.close_stream(id));
  }
  server.wait_idle();
  EXPECT_EQ(server.stream_slots(), 1u);
  EXPECT_EQ(server.active_streams(), 0u);
}

TEST(StreamLifecycle, ConcurrentChurnKeepsSlotsBoundedAndIdsValid) {
  // T threads, each looping open -> submit a few -> close -> reopen, with a
  // rogue thread submitting to random (frequently stale) ids. Bounds: at
  // most T streams are open at once, so the slot table may never exceed T
  // (+1 for id-handoff races is not possible: open under the same mutex
  // reuses the smallest free id).
  constexpr std::size_t kThreads = 4;
  constexpr int kCycles = 150;
  FrameServer server({.workers = 3, .queue_capacity = 16});
  const auto config = make_config(16, 16, 4);
  const auto frame = image::make_gradient_image(16, 16);

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> unknown{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> churners;
  churners.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    churners.emplace_back([&, t] {
      for (int cycle = 0; cycle < kCycles; ++cycle) {
        const auto id = server.open_stream({.name = "churn-" + std::to_string(t),
                                            .kind = EngineKind::Compressed,
                                            .engine = config});
        EXPECT_LT(id, kThreads);  // ids recycle within the bound
        for (int f = 0; f < 3; ++f) {
          // Our own open stream with Block policy always admits while the
          // server is up — UnknownStream here would mean id reuse corrupted
          // another thread's slot.
          const auto receipt = server.submit_frame(id, frame, SubmitPolicy::Block);
          EXPECT_TRUE(receipt.accepted());
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
        EXPECT_TRUE(server.close_stream(id));
      }
    });
  }
  // Rogue submitter: stale and never-opened ids must come back as
  // UnknownStream receipts (or race onto a live recycled id), never crash.
  std::thread rogue([&] {
    std::uint32_t id = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto receipt = server.submit_frame(id, frame, SubmitPolicy::Reject);
      if (receipt.error == SubmitError::UnknownStream) {
        unknown.fetch_add(1, std::memory_order_relaxed);
      }
      id = (id + 1) % (kThreads + 4);  // sweep past the valid range too
    }
  });

  for (auto& th : churners) th.join();
  stop.store(true, std::memory_order_relaxed);
  rogue.join();
  server.wait_idle();

  EXPECT_LE(server.stream_slots(), kThreads);
  EXPECT_EQ(server.active_streams(), 0u);
  EXPECT_GT(accepted.load(), 0u);
  EXPECT_GT(unknown.load(), 0u);  // the rogue really exercised the error path
}

TEST(StreamLifecycle, InFlightFramesSurviveClose) {
  // Close the stream while its frames are still queued/executing: every
  // accepted frame must still complete (the worker owns a reference), and
  // the callback must fire.
  FrameServer server({.workers = 1, .queue_capacity = 32});
  const auto config = make_config(32, 32, 8);
  const auto frame = image::make_natural_image(32, 32, {.seed = 4});
  const auto id =
      server.open_stream({.name = "inflight", .kind = EngineKind::Compressed, .engine = config});

  std::atomic<int> completed{0};
  constexpr int kFrames = 8;
  int submitted = 0;
  for (int i = 0; i < kFrames; ++i) {
    if (server.submit(id, frame, SubmitPolicy::Block,
                      [&](FrameResult) { completed.fetch_add(1); })) {
      ++submitted;
    }
  }
  EXPECT_TRUE(server.close_stream(id));
  EXPECT_EQ(server.submit_frame(id, frame).error, SubmitError::UnknownStream);
  server.wait_idle();
  EXPECT_EQ(completed.load(), submitted);
  EXPECT_EQ(server.active_streams(), 0u);
}

}  // namespace
}  // namespace swc::runtime

// ThreadSanitizer-targeted stress: many small frames, several producer
// threads, 8 workers, a stats poller racing the workers, and striped
// submissions mixed in. No sleeps, no timing assumptions — the test is about
// data-race freedom and conservation of frame counts under load.
// CMake adds a dedicated CTest entry running this suite under TSan when the
// build is configured with -DSWC_SANITIZE=thread.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/streaming_engine.hpp"
#include "image/synthetic.hpp"
#include "runtime/frame_server.hpp"
#include "telemetry/telemetry.hpp"

namespace swc::runtime {
namespace {

core::EngineConfig make_config(std::size_t w, std::size_t h, std::size_t n) {
  core::EngineConfig config;
  config.spec = {w, h, n};
  config.codec.threshold = 0;
  return config;
}

TEST(RuntimeStress, ManySmallFramesAcrossEightWorkers) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kFramesPerProducer = 40;
  constexpr std::size_t kStreamsPerProducer = 2;

  FrameServer server({.workers = 8, .queue_capacity = 32});
  const auto config = make_config(16, 16, 4);
  const auto frame = image::make_natural_image(16, 16, {.seed = 42});

  std::vector<std::uint32_t> stream_ids;
  for (std::size_t i = 0; i < kProducers * kStreamsPerProducer; ++i) {
    stream_ids.push_back(server.open_stream({.name = "s" + std::to_string(i),
                                             .kind = EngineKind::Compressed,
                                             .engine = config,
                                             .keep_output = false}));
  }

  std::atomic<std::uint64_t> callbacks{0};
  std::atomic<bool> stop_polling{false};
  std::thread poller([&] {
    // Snapshot stats concurrently with the workers; TSan verifies this is
    // race-free, the final assertions verify it is consistent.
    while (!stop_polling.load()) {
      const auto snap = server.stats();
      EXPECT_LE(snap.frames_completed, snap.frames_submitted);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t f = 0; f < kFramesPerProducer; ++f) {
        const auto id = stream_ids[p * kStreamsPerProducer + f % kStreamsPerProducer];
        EXPECT_TRUE(server.submit(id, frame, SubmitPolicy::Block,
                                  [&](FrameResult) { ++callbacks; }));
      }
    });
  }
  for (auto& t : producers) t.join();
  server.wait_idle();
  stop_polling = true;
  poller.join();

  const auto stats = server.stats();
  const std::uint64_t expected = kProducers * kFramesPerProducer;
  EXPECT_EQ(callbacks.load(), expected);
  EXPECT_EQ(stats.frames_submitted, expected);
  EXPECT_EQ(stats.frames_completed, expected);
  EXPECT_EQ(stats.frames_rejected, 0u);
  std::uint64_t per_stream_total = 0;
  for (const auto& s : stats.streams) per_stream_total += s.frames_completed;
  EXPECT_EQ(per_stream_total, expected);
}

TEST(RuntimeStress, ConcurrentReentrantScansWithLiveTelemetryReader) {
  // N workers drive one const engine's run_reentrant concurrently, each
  // flushing its run snapshot into the process-global telemetry aggregate,
  // while a monitor thread samples Registry::global_snapshot() the whole
  // time. TSan verifies the sampling is race-free; the final assertions
  // verify nothing was lost or double-counted.
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kRunsPerWorker = 8;
  constexpr std::size_t kSize = 24;
  constexpr std::size_t kWindow = 4;

  const core::CompressedEngine engine(make_config(kSize, kSize, kWindow));
  const auto frame = image::make_natural_image(kSize, kSize, {.seed = 5});
  const auto& ids = core::EngineMetricIds::get();
  telemetry::Registry::reset_global();

  std::atomic<bool> stop_monitor{false};
  std::thread monitor([&] {
    std::uint64_t last = 0;
    while (!stop_monitor.load()) {
      const auto global = telemetry::Registry::global_snapshot();
      const std::uint64_t windows = global.sum(ids.windows);
      EXPECT_GE(windows, last);  // counters are monotonic under flushes
      last = windows;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      for (std::size_t r = 0; r < kRunsPerWorker; ++r) {
        const auto result = engine.run_reentrant(
            frame, [](std::size_t, std::size_t, const core::WindowView&) {});
        EXPECT_EQ(result.reconstructed, frame);  // threshold 0 stays lossless
        telemetry::Registry::flush(result.stats.metrics);
      }
    });
  }
  for (auto& t : workers) t.join();
  stop_monitor = true;
  monitor.join();

  const auto global = telemetry::Registry::global_snapshot();
  const std::uint64_t windows_per_run = (kSize - kWindow + 1) * (kSize - kWindow + 1);
  EXPECT_EQ(global.sum(ids.windows), kWorkers * kRunsPerWorker * windows_per_run);
  EXPECT_EQ(global.sum(ids.rows), kWorkers * kRunsPerWorker * (kSize - kWindow));
  telemetry::Registry::reset_global();
}

TEST(RuntimeStress, StripedAndStreamedFramesCoexist) {
  FrameServer server({.workers = 8, .queue_capacity = 16});
  const auto small = make_config(16, 16, 4);
  const auto big = make_config(48, 48, 8);
  const auto small_id = server.open_stream(
      {.name = "small", .kind = EngineKind::Compressed, .engine = small, .keep_output = false});
  const auto big_id =
      server.open_stream({.name = "big", .kind = EngineKind::Compressed, .engine = big});

  const auto small_frame = image::make_natural_image(16, 16, {.seed = 1});
  const auto big_frame = image::make_natural_image(48, 48, {.seed = 2});

  std::thread streamer([&] {
    for (int i = 0; i < 24; ++i) {
      EXPECT_TRUE(server.submit(small_id, small_frame, SubmitPolicy::Block));
    }
  });
  // Striped submissions from the calling thread while the streamer floods
  // the queue: caller-helping execution must stay deadlock-free.
  for (int i = 0; i < 4; ++i) {
    const auto result = server.submit_striped(big_id, big_frame, 8);
    EXPECT_EQ(result.reconstructed, big_frame);
  }
  streamer.join();
  server.wait_idle();

  const auto stats = server.stats();
  EXPECT_EQ(stats.streams[small_id].frames_completed, 24u);
  EXPECT_EQ(stats.streams[big_id].frames_completed, 4u);
}

}  // namespace
}  // namespace swc::runtime

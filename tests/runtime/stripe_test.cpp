// Stripe-parallel correctness: halo geometry, and the headline equivalence
// claim — a striped scan is bit-identical to the whole-frame scan at
// threshold 0, both in the window (kernel) outputs and in the reconstructed
// image, for any stripe count, with or without a thread pool.

#include "runtime/stripe.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "core/streaming_engine.hpp"
#include "image/synthetic.hpp"
#include "kernels/kernels.hpp"
#include "runtime/thread_pool.hpp"
#include "telemetry/telemetry.hpp"
#include "window/apply.hpp"

namespace swc::runtime {
namespace {

core::EngineConfig make_config(std::size_t w, std::size_t h, std::size_t n, int threshold = 0) {
  core::EngineConfig config;
  config.spec = {w, h, n};
  config.codec.threshold = threshold;
  return config;
}

TEST(StripePlan, HaloGeometryIsExact) {
  const core::SlidingWindowSpec spec{64, 48, 8};
  const auto stripes = plan_stripes(spec, 4);
  ASSERT_EQ(stripes.size(), 4u);
  std::size_t covered = 0;
  for (std::size_t i = 0; i < stripes.size(); ++i) {
    const auto& s = stripes[i];
    // Owned window rows + (N-1)-row halo.
    EXPECT_EQ(s.input_rows, s.output_rows + spec.window - 1);
    EXPECT_EQ(s.input_row_begin, s.output_row_begin);
    EXPECT_GE(s.output_rows, 1u);
    if (i > 0) {
      // Contiguous ownership; adjacent stripes overlap by exactly N-1 rows.
      EXPECT_EQ(s.output_row_begin, stripes[i - 1].output_row_begin + stripes[i - 1].output_rows);
      EXPECT_EQ(stripes[i - 1].input_row_end() - s.input_row_begin, spec.window - 1);
    }
    covered += s.output_rows;
  }
  EXPECT_EQ(covered, spec.image_height - spec.window + 1);
  EXPECT_EQ(stripes.back().input_row_end(), spec.image_height);
}

TEST(StripePlan, ClampsToAvailableWindowRows) {
  const core::SlidingWindowSpec spec{16, 10, 8};  // only 3 window rows
  EXPECT_EQ(plan_stripes(spec, 8).size(), 3u);
  EXPECT_EQ(plan_stripes(spec, 1).size(), 1u);
  EXPECT_EQ(plan_stripes(spec, 0).size(), 1u);
}

TEST(StripeMerge, WindowCountMatchesWholeFrameExactly) {
  const auto config = make_config(40, 36, 6);
  const auto img = image::make_natural_image(40, 36, {.seed = 11});
  const auto striped = run_compressed_striped(config, img, 5, nullptr);
  const std::size_t expected = (40 - 6 + 1) * (36 - 6 + 1);
  EXPECT_EQ(striped.stats.windows_emitted(), expected);
}

TEST(StripeMerge, TelemetryFoldMatchesWholeFrameForSingleStripe) {
  // A 1-stripe striped run is the whole-frame scan routed through the merge
  // path, so every counter and gauge must fold to identical values. Timer
  // sums are wall-clock and legitimately differ run to run, so only their
  // sample counts are compared.
  const auto config = make_config(40, 32, 8);
  const auto img = image::make_natural_image(40, 32, {.seed = 13});
  const core::CompressedEngine whole(config);
  const auto reference =
      whole.run_reentrant(img, [](std::size_t, std::size_t, const core::WindowView&) {});
  const auto striped = run_compressed_striped(config, img, 1, nullptr);

  const auto& ids = core::EngineMetricIds::get();
  for (const auto id : {ids.rows, ids.windows, ids.codec_columns, ids.payload_bits,
                        ids.management_bits}) {
    EXPECT_EQ(striped.stats.metrics.sum(id), reference.stats.metrics.sum(id))
        << telemetry::Registry::info(id).name;
  }
  for (const auto id : {ids.row_bits, ids.stream_bits}) {
    EXPECT_EQ(striped.stats.metrics.max(id), reference.stats.metrics.max(id))
        << telemetry::Registry::info(id).name;
  }
  for (const auto id : {ids.stage_decompose, ids.stage_encode, ids.stage_decode,
                        ids.stage_recompose}) {
    EXPECT_EQ(striped.stats.metrics.count(id), reference.stats.metrics.count(id))
        << telemetry::Registry::info(id).name;
  }
}

TEST(StripeMerge, FoldedTelemetryStaysConsistentAcrossStripeCounts) {
  // Multi-stripe runs perform fewer row transitions than the whole-frame
  // scan (each stripe re-reads its halo from the source image), so payload
  // counters legitimately shrink — but the merged snapshot must stay
  // internally consistent with the concatenated per-row records, and the
  // window cover is invariant.
  const auto config = make_config(48, 40, 8);
  const auto img = image::make_natural_image(48, 40, {.seed = 17});
  const std::size_t expected_windows = (48 - 8 + 1) * (40 - 8 + 1);
  const auto& ids = core::EngineMetricIds::get();

  for (const std::size_t stripes : {std::size_t{2}, std::size_t{3}, std::size_t{5}}) {
    const auto result = run_compressed_striped(config, img, stripes, nullptr);
    const auto& m = result.stats.metrics;
    EXPECT_EQ(m.sum(ids.windows), expected_windows) << stripes << " stripes";
    EXPECT_EQ(m.sum(ids.rows), result.stats.per_row.size()) << stripes << " stripes";
    std::uint64_t payload = 0, management = 0, row_hw = 0;
    for (const auto& row : result.stats.per_row) {
      payload += row.payload_bits;
      management += row.management_bits;
      row_hw = std::max<std::uint64_t>(row_hw, row.total_bits());
    }
    EXPECT_EQ(m.sum(ids.payload_bits), payload) << stripes << " stripes";
    EXPECT_EQ(m.sum(ids.management_bits), management) << stripes << " stripes";
    EXPECT_EQ(m.max(ids.row_bits), row_hw) << stripes << " stripes";
  }
}

class StripeEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StripeEquivalence, BitIdenticalToWholeFrameAtThresholdZero) {
  const std::size_t num_stripes = GetParam();
  const std::size_t w = 48, h = 40, n = 8;
  const auto config = make_config(w, h, n, /*threshold=*/0);
  const auto img = image::make_natural_image(w, h, {.seed = 7});

  // Whole-frame reference: window outputs and reconstructed image.
  const auto [ow, oh] = window::output_dims(config.spec);
  image::Image<std::uint8_t> reference(ow, oh);
  const core::CompressedEngine whole(config);
  const kernels::BoxMeanKernel kernel;
  auto whole_result =
      whole.run_reentrant(img, [&](std::size_t r, std::size_t c, const core::WindowView& win) {
        reference.at(c, r) = kernel(r, c, win);
      });

  image::Image<std::uint8_t> striped_out(ow, oh);
  const auto striped = run_compressed_striped(
      config, img, num_stripes, nullptr,
      [&](std::size_t r, std::size_t c, const core::WindowView& win) {
        striped_out.at(c, r) = kernel(r, c, win);
      });

  EXPECT_EQ(striped_out, reference);
  EXPECT_EQ(striped.reconstructed, whole_result.reconstructed);
  EXPECT_EQ(striped.reconstructed, img);  // threshold 0 is lossless end to end
  EXPECT_EQ(striped.stats.windows_emitted(), whole_result.stats.windows_emitted());
  // Stripes owning >= 2 window rows perform row transitions and therefore
  // record codec traffic; single-row stripes legitimately never recompress.
  if (num_stripes < h - n + 1) {
    EXPECT_GT(striped.stats.max_row_bits(), 0u);
  } else {
    EXPECT_TRUE(striped.stats.per_row.empty());
  }
  EXPECT_GT(whole_result.stats.max_row_bits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(StripeCounts, StripeEquivalence,
                         ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{3},
                                           std::size_t{7}, std::size_t{33}));

TEST(StripeEquivalencePooled, PooledRunMatchesSequentialRun) {
  const std::size_t w = 64, h = 64, n = 8;
  const auto config = make_config(w, h, n, /*threshold=*/0);
  const auto img = image::make_natural_image(w, h, {.seed = 21});

  ThreadPool pool(4, 16);
  const auto pooled = run_compressed_striped(config, img, 8, &pool);
  const auto sequential = run_compressed_striped(config, img, 8, nullptr);

  EXPECT_EQ(pooled.reconstructed, sequential.reconstructed);
  EXPECT_EQ(pooled.reconstructed, img);
  EXPECT_EQ(pooled.stats.windows_emitted(), sequential.stats.windows_emitted());
  EXPECT_EQ(pooled.stats.per_row.size(), sequential.stats.per_row.size());
}

TEST(StripeEquivalencePooled, AdversarialContentStaysExact) {
  // Checkerboard maximises detail coefficients — the worst case for the
  // codec is still exact at threshold 0.
  const std::size_t w = 32, h = 28, n = 4;
  const auto config = make_config(w, h, n, /*threshold=*/0);
  const auto img = image::make_checkerboard_image(w, h, 1);
  ThreadPool pool(3, 8);
  const auto striped = run_compressed_striped(config, img, 6, &pool);
  EXPECT_EQ(striped.reconstructed, img);
}

TEST(Stripe, LossyStripedRunStillCoversEveryWindow) {
  // At threshold > 0 stripe seams change drift, so outputs may differ from
  // the whole-frame scan — but the cover (one window per position) and the
  // merged stats structure must hold.
  const auto config = make_config(32, 24, 4, /*threshold=*/4);
  const auto img = image::make_natural_image(32, 24, {.seed = 3});
  const auto striped = run_compressed_striped(config, img, 4, nullptr);
  EXPECT_EQ(striped.stats.windows_emitted(), (32u - 4 + 1) * (24u - 4 + 1));
  EXPECT_EQ(striped.reconstructed.width(), 32u);
  EXPECT_EQ(striped.reconstructed.height(), 24u);
}

}  // namespace
}  // namespace swc::runtime

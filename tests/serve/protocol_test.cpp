// Wire-protocol unit tests: payload codec roundtrips, the incremental
// parser under dribble-fed and batched input, and the poisoning guarantees
// (truncated, oversized, corrupt, and random garbage never crash and never
// emit a bogus message).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "serve/protocol.hpp"

namespace swc::serve {
namespace {

Message parse_one(const std::vector<std::uint8_t>& wire) {
  FrameParser parser;
  std::vector<Message> out;
  EXPECT_TRUE(parser.feed({wire.data(), wire.size()},
                          [&](Message&& m) { out.push_back(std::move(m)); }));
  EXPECT_EQ(out.size(), 1u);
  if (out.empty()) return {};
  return std::move(out.front());
}

TEST(ServeProtocol, HelloPayloadRoundTrips) {
  HelloPayload hello;
  hello.qos = QosTier::Realtime;
  hello.width = 640;
  hello.height = 480;
  hello.window = 16;
  hello.threshold = -3;
  hello.name = "camera-7";
  hello.backend = "legall53";
  hello.rate_mode = RateMode::BitsPerPixel;
  hello.rate_target_milli = 2500;  // 2.5 bpp

  const auto decoded = decode_hello(encode_payload(hello));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->qos, QosTier::Realtime);
  EXPECT_EQ(decoded->width, 640u);
  EXPECT_EQ(decoded->height, 480u);
  EXPECT_EQ(decoded->window, 16u);
  EXPECT_EQ(decoded->threshold, -3);
  EXPECT_EQ(decoded->name, "camera-7");
  EXPECT_EQ(decoded->backend, "legall53");
  EXPECT_EQ(decoded->rate_mode, RateMode::BitsPerPixel);
  EXPECT_EQ(decoded->rate_target_milli, 2500u);

  // Defaults stay on the wire too: no backend, no rate control.
  const auto plain = decode_hello(encode_payload(HelloPayload{}));
  ASSERT_TRUE(plain.has_value());
  EXPECT_TRUE(plain->backend.empty());
  EXPECT_EQ(plain->rate_mode, RateMode::None);
}

TEST(ServeProtocol, FrameDoneAndErrorPayloadsRoundTrip) {
  const auto done =
      decode_frame_done(encode_payload(FrameDonePayload{FrameStatus::RejectedBusy, 123456, 789}));
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->status, FrameStatus::RejectedBusy);
  EXPECT_EQ(done->latency_ns, 123456u);
  EXPECT_EQ(done->payload_bits, 789u);

  const auto err =
      decode_error(encode_payload(ErrorPayload{ErrorCode::ServerFull, "max sessions"}));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ErrorCode::ServerFull);
  EXPECT_EQ(err->message, "max sessions");
}

TEST(ServeProtocol, DecodersRejectTruncatedPayloads) {
  auto hello = encode_payload(HelloPayload{QosTier::Bulk, 64, 64, 8, 0, "x"});
  hello.pop_back();
  EXPECT_FALSE(decode_hello(hello).has_value());

  auto done = encode_payload(FrameDonePayload{});
  done.pop_back();
  EXPECT_FALSE(decode_frame_done(done).has_value());
  EXPECT_FALSE(decode_error(std::vector<std::uint8_t>{0x01}).has_value());
}

TEST(ServeProtocol, MessageRoundTripsThroughParser) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto wire = encode_message(MsgType::SubmitFrame, 7, 42, payload);
  ASSERT_EQ(wire.size(), kHeaderSize + payload.size());

  const Message msg = parse_one(wire);
  EXPECT_EQ(msg.header.type, MsgType::SubmitFrame);
  EXPECT_EQ(msg.header.stream_id, 7u);
  EXPECT_EQ(msg.header.seq, 42u);
  EXPECT_EQ(msg.payload, payload);
}

TEST(ServeProtocol, EmptyPayloadMessageParses) {
  const Message msg = parse_one(encode_message(MsgType::Goodbye, 3, 0, {}));
  EXPECT_EQ(msg.header.type, MsgType::Goodbye);
  EXPECT_TRUE(msg.payload.empty());
}

TEST(ServeProtocol, ParserHandlesByteAtATimeDelivery) {
  std::vector<std::uint8_t> wire;
  for (int i = 0; i < 3; ++i) {
    const auto one = encode_message(MsgType::SubmitFrame, 1, static_cast<std::uint64_t>(i),
                                    std::vector<std::uint8_t>(17, static_cast<std::uint8_t>(i)));
    wire.insert(wire.end(), one.begin(), one.end());
  }

  FrameParser parser;
  std::vector<Message> out;
  for (const std::uint8_t byte : wire) {
    ASSERT_TRUE(parser.feed({&byte, 1}, [&](Message&& m) { out.push_back(std::move(m)); }));
  }
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out[i].header.seq, i);
    EXPECT_EQ(out[i].payload.size(), 17u);
  }
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(ServeProtocol, PatchSeqKeepsFrameValid) {
  auto wire = encode_message(MsgType::SubmitFrame, 9, 1, std::vector<std::uint8_t>(64, 0xAB));
  patch_seq(wire, 0xDEADBEEFCAFEull);
  const Message msg = parse_one(wire);
  EXPECT_EQ(msg.header.seq, 0xDEADBEEFCAFEull);
  EXPECT_EQ(msg.header.stream_id, 9u);
}

TEST(ServeProtocol, CorruptPayloadPoisonsWithBadCrc) {
  auto wire = encode_message(MsgType::SubmitFrame, 1, 1, std::vector<std::uint8_t>(32, 0x55));
  wire[kHeaderSize + 5] ^= 0x01;  // flip one payload bit
  FrameParser parser;
  std::size_t emitted = 0;
  EXPECT_FALSE(parser.feed({wire.data(), wire.size()}, [&](Message&&) { ++emitted; }));
  EXPECT_EQ(emitted, 0u);
  EXPECT_EQ(parser.error(), FrameParser::Error::BadCrc);
  // Poisoned: even a subsequently valid frame is ignored.
  const auto good = encode_message(MsgType::Goodbye, 1, 0, {});
  EXPECT_FALSE(parser.feed({good.data(), good.size()}, [&](Message&&) { ++emitted; }));
  EXPECT_EQ(emitted, 0u);
}

TEST(ServeProtocol, BadMagicVersionTypeAndFlagsAreRejected) {
  const auto base = encode_message(MsgType::Hello, 0, 0, {});

  struct Case {
    std::size_t offset;
    std::uint8_t value;
    FrameParser::Error expected;
  };
  const Case cases[] = {
      {0, 0xFF, FrameParser::Error::BadMagic},
      {4, 99, FrameParser::Error::BadVersion},
      {5, 0, FrameParser::Error::BadType},
      {5, 200, FrameParser::Error::BadType},
      {6, 1, FrameParser::Error::BadFlags},
  };
  for (const auto& c : cases) {
    auto wire = base;
    wire[c.offset] = c.value;
    FrameParser parser;
    EXPECT_FALSE(parser.feed({wire.data(), wire.size()}, [](Message&&) {}));
    EXPECT_EQ(parser.error(), c.expected);
  }
}

TEST(ServeProtocol, OversizedPayloadLengthPoisonsWithoutAllocating) {
  auto wire = encode_message(MsgType::SubmitFrame, 1, 1, std::vector<std::uint8_t>(8, 1));
  // Rewrite payload_len to a huge value; the parser must refuse before
  // buffering anything of that size.
  wire[20] = 0xFF;
  wire[21] = 0xFF;
  wire[22] = 0xFF;
  wire[23] = 0x7F;
  FrameParser parser(FrameParser::Limits{1 << 20});
  EXPECT_FALSE(parser.feed({wire.data(), wire.size()}, [](Message&&) {}));
  EXPECT_EQ(parser.error(), FrameParser::Error::Oversized);
}

TEST(ServeProtocol, TruncatedStreamNeverEmitsAndStaysClean) {
  const auto wire = encode_message(MsgType::SubmitFrame, 1, 1, std::vector<std::uint8_t>(100, 7));
  for (std::size_t cut = 0; cut < wire.size(); cut += 13) {
    FrameParser parser;
    std::size_t emitted = 0;
    EXPECT_TRUE(parser.feed({wire.data(), cut}, [&](Message&&) { ++emitted; }));
    EXPECT_EQ(emitted, 0u);
    EXPECT_EQ(parser.error(), FrameParser::Error::None);  // incomplete, not invalid
    EXPECT_EQ(parser.buffered_bytes(), cut);
  }
}

// Deterministic garbage fuzz: random chunks of random bytes must never
// crash, never read out of bounds (ASan job runs this file), and never emit
// a message whose CRC did not actually validate.
TEST(ServeProtocolFuzz, RandomGarbageNeverCrashes) {
  std::uint64_t rng = 0x243F6A8885A308D3ull;
  const auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  for (int round = 0; round < 200; ++round) {
    FrameParser parser(FrameParser::Limits{64 * 1024});
    std::size_t emitted = 0;
    for (int chunk = 0; chunk < 50; ++chunk) {
      std::vector<std::uint8_t> bytes(next() % 512);
      for (auto& b : bytes) b = static_cast<std::uint8_t>(next());
      if (!parser.feed({bytes.data(), bytes.size()}, [&](Message&&) { ++emitted; })) break;
    }
    // Random bytes essentially never form a valid CRC'd message.
    EXPECT_EQ(emitted, 0u);
  }
}

// Mutation fuzz: start from valid frames, flip random bytes, and require the
// parser to either reject or emit only frames whose payload survived intact.
TEST(ServeProtocolFuzz, MutatedFramesNeverEmitCorruptPayloads) {
  std::uint64_t rng = 0x13198A2E03707344ull;
  const auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  for (int round = 0; round < 300; ++round) {
    std::vector<std::uint8_t> payload(next() % 256);
    for (auto& b : payload) b = static_cast<std::uint8_t>(next());
    auto wire = encode_message(MsgType::SubmitFrame, 1, static_cast<std::uint64_t>(round), payload);
    const std::size_t flips = 1 + next() % 4;
    for (std::size_t f = 0; f < flips; ++f) {
      wire[next() % wire.size()] ^= static_cast<std::uint8_t>(1u << (next() % 8));
    }

    FrameParser parser;
    parser.feed({wire.data(), wire.size()}, [&](Message&& m) {
      // If a message comes out, its payload must be exactly the original
      // (flips hit the header and were caught, or cancelled out).
      EXPECT_EQ(crc32({m.payload.data(), m.payload.size()}), m.header.payload_crc);
    });
  }
}

}  // namespace
}  // namespace swc::serve

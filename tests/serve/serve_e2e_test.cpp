// End-to-end serve-layer tests over real loopback sockets: handshake,
// frame completions, QoS behavior (realtime rejections, bulk backpressure
// completeness), admission control, per-frame and protocol-level error
// paths, orphaned completions after abrupt disconnect, and a scaled-down
// loadgen soak.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "hw/pipeline_spec.hpp"
#include "resources/composition.hpp"
#include "resources/device.hpp"
#include "serve/client/loadgen.hpp"
#include "serve/client/sync_client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace swc::serve {
namespace {

using client::SyncClient;

std::vector<std::uint8_t> test_pixels(std::uint32_t width, std::uint32_t height) {
  std::vector<std::uint8_t> pixels(static_cast<std::size_t>(width) * height);
  for (std::size_t i = 0; i < pixels.size(); ++i) {
    pixels[i] = static_cast<std::uint8_t>((i * 31 + i / width) & 0xFF);
  }
  return pixels;
}

HelloPayload bulk_hello(std::uint32_t size = 64) {
  HelloPayload hello;
  hello.qos = QosTier::Bulk;
  hello.width = size;
  hello.height = size;
  hello.window = 8;
  hello.threshold = 2;
  hello.name = "e2e";
  return hello;
}

// Polls `predicate` until true or the deadline passes (loop-thread work like
// orphan accounting lands asynchronously after socket-level events).
bool eventually(const std::function<bool()>& predicate,
                std::chrono::milliseconds deadline = std::chrono::milliseconds(2000)) {
  const auto t1 = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < t1) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return predicate();
}

TEST(ServeE2E, HelloFramesStatsGoodbye) {
  Server server({.port = 0, .workers = 2, .queue_capacity = 16, .limits = {}});
  server.start();

  SyncClient conn({.host = "127.0.0.1", .port = server.port()});
  conn.hello(bulk_hello());

  const auto pixels = test_pixels(64, 64);
  for (std::uint64_t seq = 1; seq <= 8; ++seq) {
    conn.send_frame(seq, pixels);
    const auto reply = conn.read_message();
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->header.type, MsgType::FrameDone);
    EXPECT_EQ(reply->header.seq, seq);
    const auto done = decode_frame_done(reply->payload);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->status, FrameStatus::Ok);
    EXPECT_GT(done->latency_ns, 0u);
    EXPECT_GT(done->payload_bits, 0u);
  }

  conn.send_stats(100);
  const auto stats = conn.read_message();
  ASSERT_TRUE(stats.has_value());
  ASSERT_EQ(stats->header.type, MsgType::StatsReply);
  const std::string json(stats->payload.begin(), stats->payload.end());
  EXPECT_NE(json.find("serve.frames_completed"), std::string::npos);
  EXPECT_NE(json.find("serve.frame_latency"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);

  conn.send_goodbye();
  while (conn.read_message()) {
  }

  // Server-side telemetry: completions counted, latency histogram populated.
  const auto& ids = ServeMetricIds::get();
  EXPECT_TRUE(eventually([&] {
    return server.serve_metrics().value(ids.frames_completed) == 8;
  }));
  const auto metrics = server.serve_metrics();
  EXPECT_EQ(metrics.value(ids.sessions_opened), 1u);
  EXPECT_GT(metrics.percentile(ids.frame_latency, 0.5), 0.0);
  EXPECT_TRUE(eventually([&] { return server.active_sessions() == 0; }));
  server.stop();
}

TEST(ServeE2E, RealtimeTierRejectsOnTheWireWhenSaturated) {
  ServerOptions options{.port = 0, .workers = 1, .queue_capacity = 1, .limits = {}};
  options.limits.realtime_max_inflight = 1;
  Server server(options);
  server.start();

  SyncClient conn({.host = "127.0.0.1", .port = server.port()});
  auto hello = bulk_hello();
  hello.qos = QosTier::Realtime;
  conn.hello(hello);

  // Flood without reading: with one worker and a one-frame in-flight cap,
  // most of these must come back rejected-busy — visibly, never dropped.
  const auto pixels = test_pixels(64, 64);
  constexpr std::uint64_t kFrames = 16;
  for (std::uint64_t seq = 1; seq <= kFrames; ++seq) conn.send_frame(seq, pixels);

  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    const auto reply = conn.read_message();
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->header.type, MsgType::FrameDone);
    const auto done = decode_frame_done(reply->payload);
    ASSERT_TRUE(done.has_value());
    (done->status == FrameStatus::Ok ? ok : rejected) += 1;
  }
  EXPECT_GE(ok, 1u);
  EXPECT_GE(rejected, 1u);
  EXPECT_EQ(ok + rejected, kFrames);  // every frame answered

  const auto& ids = ServeMetricIds::get();
  EXPECT_EQ(server.serve_metrics().value(ids.frames_rejected_busy), rejected);
  server.stop();
}

TEST(ServeE2E, BulkTierDeliversEveryFrameUnderBackpressure) {
  // Tiny engine queue + in-flight cap: the session must park frames and
  // pause socket reads, yet every frame still completes exactly once.
  ServerOptions options{.port = 0, .workers = 2, .queue_capacity = 2, .limits = {}};
  options.limits.bulk_max_inflight = 2;
  Server server(options);
  server.start();

  SyncClient conn({.host = "127.0.0.1", .port = server.port()});
  conn.hello(bulk_hello());

  const auto pixels = test_pixels(64, 64);
  constexpr std::uint64_t kFrames = 64;
  for (std::uint64_t seq = 1; seq <= kFrames; ++seq) conn.send_frame(seq, pixels);

  std::vector<bool> seen(kFrames + 1, false);
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    const auto reply = conn.read_message();
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->header.type, MsgType::FrameDone);
    const auto done = decode_frame_done(reply->payload);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->status, FrameStatus::Ok);
    ASSERT_GE(reply->header.seq, 1u);
    ASSERT_LE(reply->header.seq, kFrames);
    EXPECT_FALSE(seen[reply->header.seq]) << "duplicate FRAME_DONE";
    seen[reply->header.seq] = true;
  }

  const auto& ids = ServeMetricIds::get();
  const auto metrics = server.serve_metrics();
  EXPECT_EQ(metrics.value(ids.frames_completed), kFrames);
  EXPECT_EQ(metrics.value(ids.frames_rejected_busy), 0u);
  // The tiny queue forces at least one pause/park cycle.
  EXPECT_GE(metrics.value(ids.read_pauses), 1u);
  server.stop();
}

TEST(ServeE2E, AdmissionControlRefusesBeyondMaxSessions) {
  ServerOptions options;
  options.limits.max_sessions = 1;
  Server server(options);
  server.start();

  SyncClient first({.host = "127.0.0.1", .port = server.port()});
  first.hello(bulk_hello());

  SyncClient second({.host = "127.0.0.1", .port = server.port()});
  try {
    second.hello(bulk_hello());
    FAIL() << "second HELLO should have been refused";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("max sessions"), std::string::npos);
  }
  EXPECT_EQ(server.serve_metrics().value(ServeMetricIds::get().sessions_rejected), 1u);
  server.stop();
}

TEST(ServeE2E, CapacityAdmissionRejectsWithBindingConstraintOnTheWire) {
  // Cost-based admission: the default device profile (XC7Z020) fits a known
  // number of w8 64x64 pipelines before the LUT budget binds; the next HELLO
  // must be refused with the binding constraint named on the wire, even
  // though max_sessions alone would have admitted it.
  hw::PipelineSpec spec;
  spec.geometry = {64, 64, 8};
  spec.threshold = 2;
  const std::size_t planner_capacity =
      resources::Composition::capacity(spec, resources::kXC7Z020);
  ASSERT_GT(planner_capacity, 0u);

  ServerOptions options;
  options.limits.max_sessions = planner_capacity + 8;  // counting would admit all
  Server server(options);
  server.start();

  std::vector<std::unique_ptr<SyncClient>> admitted;
  std::string rejection;
  for (std::size_t i = 0; i < planner_capacity + 1; ++i) {
    auto conn = std::make_unique<SyncClient>(
        SyncClient::Options{.host = "127.0.0.1", .port = server.port()});
    try {
      conn->hello(bulk_hello());
      admitted.push_back(std::move(conn));
    } catch (const std::runtime_error& e) {
      rejection = e.what();
      break;
    }
  }
  EXPECT_EQ(admitted.size(), planner_capacity);
  EXPECT_NE(rejection.find("capacity: luts"), std::string::npos) << rejection;
  EXPECT_NE(rejection.find("XC7Z020"), std::string::npos) << rejection;
  EXPECT_EQ(server.serve_metrics().value(ServeMetricIds::get().sessions_rejected_capacity), 1u);

  // Closing an admitted session releases its pipeline's share of the design;
  // the next HELLO fits again.
  admitted.back()->send_goodbye();
  while (admitted.back()->read_message()) {
  }
  admitted.pop_back();
  ASSERT_TRUE(eventually([&] { return server.active_sessions() == planner_capacity - 1; }));
  SyncClient readmitted({.host = "127.0.0.1", .port = server.port()});
  EXPECT_NO_THROW(readmitted.hello(bulk_hello()));
  server.stop();
}

TEST(ServeE2E, HttpEndpointServesHealthzAndMetrics) {
  ServerOptions options;
  options.http_port = 0;  // ephemeral
  Server server(options);
  server.start();
  ASSERT_NE(server.http_port(), 0);

  // Plain blocking socket: the scrape endpoint speaks HTTP/1.0, one request
  // per connection, response terminated by server close.
  const auto http_get = [&](const std::string& target) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.http_port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
    const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
    EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::string response;
    char buf[1024];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
  };

  const std::string health = http_get("/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string metrics = http_get("/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("metrics"), std::string::npos);

  const std::string missing = http_get("/nope");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;
  server.stop();
}

TEST(ServeE2E, BadGeometryIsRefusedAtHello) {
  Server server;
  server.start();
  SyncClient conn({.host = "127.0.0.1", .port = server.port()});
  auto hello = bulk_hello();
  hello.window = 7;  // odd window: engine validation must reject
  EXPECT_THROW(conn.hello(hello), std::runtime_error);
  server.stop();
}

TEST(ServeE2E, UnknownBackendIsRefusedAtHello) {
  Server server;
  server.start();
  SyncClient conn({.host = "127.0.0.1", .port = server.port()});
  auto hello = bulk_hello();
  hello.backend = "vaporware";
  try {
    conn.hello(hello);
    FAIL() << "HELLO with an unregistered backend must be refused";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("backend"), std::string::npos) << e.what();
  }
  server.stop();
}

TEST(ServeE2E, BackendAndRateTargetNegotiateAtHello) {
  // A legall53 stream with a closed-loop bpp target: frames must complete
  // Ok and report compressed bits, proving the backend + controller ran.
  Server server({.port = 0, .workers = 2, .queue_capacity = 16, .limits = {}});
  server.start();
  SyncClient conn({.host = "127.0.0.1", .port = server.port()});
  auto hello = bulk_hello();
  hello.threshold = 0;
  hello.backend = "legall53";
  hello.rate_mode = RateMode::BitsPerPixel;
  hello.rate_target_milli = 500;  // 0.5 bpp — far below lossless, forces adaptation
  conn.hello(hello);

  const auto pixels = test_pixels(64, 64);
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    conn.send_frame(seq, pixels);
    const auto reply = conn.read_message();
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->header.type, MsgType::FrameDone);
    const auto done = decode_frame_done(reply->payload);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->status, FrameStatus::Ok);
    EXPECT_GT(done->payload_bits, 0u);
  }
  server.stop();
}

TEST(ServeE2E, SessionTeardownRetiresEngineStream) {
  // The leak fix: each connection's engine stream must be closed with the
  // session, so repeated connect/hello/disconnect cycles keep the engine's
  // slot table bounded (ids recycle) instead of growing monotonically.
  Server server({.port = 0, .workers = 1, .queue_capacity = 8, .limits = {}});
  server.start();
  for (int cycle = 0; cycle < 12; ++cycle) {
    SyncClient conn({.host = "127.0.0.1", .port = server.port()});
    conn.hello(bulk_hello());
    conn.send_frame(1, test_pixels(64, 64));
    const auto reply = conn.read_message();
    ASSERT_TRUE(reply.has_value());
    conn.send_goodbye();
    EXPECT_FALSE(conn.read_message().has_value());  // server closes after draining
  }
  EXPECT_TRUE(eventually([&] { return server.engine().active_streams() == 0; }));
  EXPECT_LE(server.engine().stream_slots(), 2u);  // closing cycle may overlap the next open
  server.stop();
}

TEST(ServeE2E, WrongSizedFrameGetsBadFrameNotDisconnect) {
  Server server;
  server.start();
  SyncClient conn({.host = "127.0.0.1", .port = server.port()});
  conn.hello(bulk_hello());

  conn.send_frame(1, std::vector<std::uint8_t>(100, 0));  // not 64*64
  const auto reply = conn.read_message();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->header.type, MsgType::FrameDone);
  const auto done = decode_frame_done(reply->payload);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->status, FrameStatus::BadFrame);

  // Session survives: a correct frame still completes.
  conn.send_frame(2, test_pixels(64, 64));
  const auto ok = conn.read_message();
  ASSERT_TRUE(ok.has_value());
  const auto done2 = decode_frame_done(ok->payload);
  ASSERT_TRUE(done2.has_value());
  EXPECT_EQ(done2->status, FrameStatus::Ok);
  server.stop();
}

TEST(ServeE2E, StreamIdMismatchIsAProtocolError) {
  Server server;
  server.start();
  SyncClient conn({.host = "127.0.0.1", .port = server.port()});
  const std::uint32_t stream = conn.hello(bulk_hello());

  const auto pixels = test_pixels(64, 64);
  conn.send_bytes(encode_message(MsgType::SubmitFrame, stream + 1, 1, pixels));
  const auto reply = conn.read_message();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->header.type, MsgType::Error);
  const auto err = decode_error(reply->payload);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ErrorCode::StreamMismatch);
  EXPECT_FALSE(conn.read_message().has_value());  // server closed on us
  server.stop();
}

TEST(ServeE2E, AbruptDisconnectOrphansInFlightFramesWithoutCrashing) {
  // One worker and big frames: completions land well after the client is
  // gone, exercising the orphan path (completion with no session).
  Server server({.port = 0, .workers = 1, .queue_capacity = 32, .limits = {}});
  server.start();
  {
    SyncClient conn({.host = "127.0.0.1", .port = server.port()});
    auto hello = bulk_hello(256);
    conn.hello(hello);
    const auto pixels = test_pixels(256, 256);
    for (std::uint64_t seq = 1; seq <= 4; ++seq) conn.send_frame(seq, pixels);
    // Destructor closes the socket with every frame still in flight.
  }
  const auto& ids = ServeMetricIds::get();
  EXPECT_TRUE(eventually([&] {
    const auto m = server.serve_metrics();
    return m.value(ids.frames_orphaned) + m.value(ids.frames_completed) == 4 &&
           server.active_sessions() == 0;
  }));
  EXPECT_GE(server.serve_metrics().value(ids.frames_orphaned), 1u);
  server.stop();
}

TEST(ServeE2E, StopWithConnectedClientsTearsDownCleanly) {
  Server server({.port = 0, .workers = 1, .queue_capacity = 8, .limits = {}});
  server.start();
  SyncClient conn({.host = "127.0.0.1", .port = server.port()});
  conn.hello(bulk_hello(128));
  const auto pixels = test_pixels(128, 128);
  for (std::uint64_t seq = 1; seq <= 6; ++seq) conn.send_frame(seq, pixels);
  server.stop();  // in-flight frames drain into the stopped loop and are dropped
  // The client observes EOF/reset, not a hang.
  while (conn.read_message()) {
  }
  SUCCEED();
}

TEST(ServeE2E, LoadgenSoakScaledDown) {
  // Planner off: 12 concurrent pipelines deliberately exceed the default
  // XC7Z020 budget, and this test exercises QoS/backpressure, not admission.
  Server server({.port = 0,
                 .workers = 4,
                 .queue_capacity = 32,
                 .limits = {.device = std::nullopt}});
  server.start();

  client::LoadgenOptions options;
  options.port = server.port();
  options.streams = 12;
  options.frames_per_stream = 25;
  options.inflight_window = 4;
  options.realtime_fraction = 0.25;
  options.collect_server_stats = true;
  const auto report = client::run_loadgen(options);

  EXPECT_EQ(report.streams_completed, 12u);
  EXPECT_EQ(report.streams_failed, 0u);
  EXPECT_EQ(report.frames_sent, 12u * 25u);
  EXPECT_EQ(report.frames_ok + report.frames_rejected_busy + report.frames_rejected_shutdown +
                report.frames_bad,
            report.frames_sent);
  EXPECT_GT(report.frames_ok, 0u);
  EXPECT_GT(report.payload_bits, 0u);
  EXPECT_EQ(report.rtt_ns.count(), report.frames_sent);
  EXPECT_GT(report.rtt_ns.percentile(0.99), report.rtt_ns.percentile(0.50) * 0.99);
  EXPECT_NE(report.server_stats_json.find("serve.frames_completed"), std::string::npos);

  // Wire-visible bookkeeping must reconcile with the server's own counters.
  const auto& ids = ServeMetricIds::get();
  const auto metrics = server.serve_metrics();
  EXPECT_EQ(metrics.value(ids.frames_completed), report.frames_ok);
  EXPECT_EQ(metrics.value(ids.frames_rejected_busy), report.frames_rejected_busy);
  EXPECT_EQ(metrics.value(ids.sessions_opened), 12u);
  server.stop();
}

}  // namespace
}  // namespace swc::serve

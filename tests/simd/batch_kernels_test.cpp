// Differential fuzz of every compiled-in SIMD table against the scalar
// reference table (the oracle), mirroring the bitstream_ref pattern: the
// scalar bodies define the wrap-mod-256 semantics, and every vector
// implementation must be byte-identical on exhaustive and randomized inputs,
// at every length and alignment offset (to exercise the vector/tail split).

#include "simd/batch_kernels.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "bitpack/nbits.hpp"
#include "image/rng.hpp"

namespace swc::simd {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  image::SplitMix64 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& v : out) v = static_cast<std::uint8_t>(rng.next());
  return out;
}

// Lengths chosen to cover empty, sub-vector, exact multiples of 16/32, and
// every tail residue around them.
const std::size_t kLengths[] = {0, 1, 2, 3, 7, 8, 15, 16, 17, 31, 32, 33, 48, 63, 64, 65, 100, 255, 256, 1000};

class BatchTable : public ::testing::TestWithParam<const BatchKernelTable*> {};

TEST_P(BatchTable, HaarForwardExhaustiveAllPairs) {
  const auto& table = *GetParam();
  const auto& ref = scalar_table();
  // All 256 x 256 (x0, x1) pairs as one 65536-lane batch.
  constexpr std::size_t kN = 256 * 256;
  std::vector<std::uint8_t> x0(kN), x1(kN), l(kN), h(kN), l_ref(kN), h_ref(kN);
  for (std::size_t a = 0; a < 256; ++a) {
    for (std::size_t b = 0; b < 256; ++b) {
      x0[a * 256 + b] = static_cast<std::uint8_t>(a);
      x1[a * 256 + b] = static_cast<std::uint8_t>(b);
    }
  }
  table.haar_forward(x0.data(), x1.data(), l.data(), h.data(), kN);
  ref.haar_forward(x0.data(), x1.data(), l_ref.data(), h_ref.data(), kN);
  ASSERT_EQ(l, l_ref);
  ASSERT_EQ(h, h_ref);

  // Inverse of the forward output must reproduce the inputs bit-exactly
  // (wrap-mod-256 losslessness), and must match the scalar inverse.
  std::vector<std::uint8_t> r0(kN), r1(kN), r0_ref(kN), r1_ref(kN);
  table.haar_inverse(l.data(), h.data(), r0.data(), r1.data(), kN);
  ref.haar_inverse(l.data(), h.data(), r0_ref.data(), r1_ref.data(), kN);
  ASSERT_EQ(r0, x0);
  ASSERT_EQ(r1, x1);
  ASSERT_EQ(r0, r0_ref);
  ASSERT_EQ(r1, r1_ref);
}

TEST_P(BatchTable, HaarRandomSpansAndOffsets) {
  const auto& table = *GetParam();
  const auto& ref = scalar_table();
  for (const std::size_t n : kLengths) {
    for (std::size_t offset = 0; offset < 3; ++offset) {
      const auto x0 = random_bytes(n + offset, 11 * n + offset);
      const auto x1 = random_bytes(n + offset, 13 * n + offset);
      std::vector<std::uint8_t> l(n + offset), h(n + offset), l_ref(n + offset),
          h_ref(n + offset);
      table.haar_forward(x0.data() + offset, x1.data() + offset, l.data() + offset,
                         h.data() + offset, n);
      ref.haar_forward(x0.data() + offset, x1.data() + offset, l_ref.data() + offset,
                       h_ref.data() + offset, n);
      ASSERT_EQ(l, l_ref) << "n=" << n << " offset=" << offset;
      ASSERT_EQ(h, h_ref) << "n=" << n << " offset=" << offset;

      std::vector<std::uint8_t> r0(n + offset), r1(n + offset);
      table.haar_inverse(l.data() + offset, h.data() + offset, r0.data() + offset,
                         r1.data() + offset, n);
      // Short-circuit n == 0: memcmp's pointers are declared nonnull, and a
      // zero-length vector's data() may be null (UBSan nonnull-attribute).
      ASSERT_TRUE(n == 0 || std::memcmp(r0.data() + offset, x0.data() + offset, n) == 0)
          << "n=" << n;
      ASSERT_TRUE(n == 0 || std::memcmp(r1.data() + offset, x1.data() + offset, n) == 0)
          << "n=" << n;
    }
  }
}

TEST_P(BatchTable, ThresholdAllValuesAllEdgeThresholds) {
  const auto& table = *GetParam();
  const auto& ref = scalar_table();
  // All 256 stored values, including -128 (|v| = 128 must survive t <= 128).
  std::vector<std::uint8_t> in(256);
  for (std::size_t i = 0; i < 256; ++i) in[i] = static_cast<std::uint8_t>(i);
  for (const int t : {-1, 0, 1, 2, 5, 127, 128, 129, 255, 300}) {
    std::vector<std::uint8_t> out(256), out_ref(256);
    table.threshold(in.data(), out.data(), 256, t);
    ref.threshold(in.data(), out_ref.data(), 256, t);
    ASSERT_EQ(out, out_ref) << "threshold=" << t;
    // Against the codec's significance predicate directly.
    for (std::size_t i = 0; i < 256; ++i) {
      const std::uint8_t expect = bitpack::is_significant(in[i], t) ? in[i] : std::uint8_t{0};
      ASSERT_EQ(out[i], expect) << "threshold=" << t << " value=" << i;
    }
    // In-place operation.
    std::vector<std::uint8_t> inplace = in;
    table.threshold(inplace.data(), inplace.data(), 256, t);
    ASSERT_EQ(inplace, out_ref) << "in-place threshold=" << t;
  }
  // Random spans at tail-exercising lengths.
  for (const std::size_t n : kLengths) {
    const auto data = random_bytes(n, 31 * n + 7);
    std::vector<std::uint8_t> out(n), out_ref(n);
    table.threshold(data.data(), out.data(), n, 3);
    ref.threshold(data.data(), out_ref.data(), n, 3);
    ASSERT_EQ(out, out_ref) << "n=" << n;
  }
}

TEST_P(BatchTable, NBitsOrBusMatchesGateTree) {
  const auto& table = *GetParam();
  for (const std::size_t n : kLengths) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      const auto coeffs = random_bytes(n, 1000 * n + seed);
      const std::uint8_t bus = table.nbits_or_bus(coeffs.data(), n);
      ASSERT_EQ(bus, scalar_table().nbits_or_bus(coeffs.data(), n)) << "n=" << n;
      // End-to-end: OR bus + priority encode == the Fig. 7 gate tree == the
      // arithmetic group width.
      ASSERT_EQ(bitpack::nbits_from_or_bus(bus), bitpack::nbits_gate_tree(coeffs)) << "n=" << n;
      ASSERT_EQ(bitpack::nbits_from_or_bus(bus), bitpack::group_nbits(coeffs)) << "n=" << n;
    }
  }
}

TEST_P(BatchTable, NBitsOrAccumulateMatchesScalar) {
  const auto& table = *GetParam();
  const auto& ref = scalar_table();
  for (const std::size_t n : kLengths) {
    const auto coeffs = random_bytes(n, 77 * n + 5);
    auto acc = random_bytes(n, 99 * n + 1);
    auto acc_ref = acc;
    table.nbits_or_accumulate(coeffs.data(), acc.data(), n);
    ref.nbits_or_accumulate(coeffs.data(), acc_ref.data(), n);
    ASSERT_EQ(acc, acc_ref) << "n=" << n;
  }
}

TEST_P(BatchTable, DeinterleaveInterleaveRoundTrip) {
  const auto& table = *GetParam();
  const auto& ref = scalar_table();
  for (const std::size_t n : kLengths) {
    const auto in = random_bytes(2 * n, 55 * n + 3);
    std::vector<std::uint8_t> even(n), odd(n), even_ref(n), odd_ref(n), back(2 * n);
    table.deinterleave(in.data(), even.data(), odd.data(), n);
    ref.deinterleave(in.data(), even_ref.data(), odd_ref.data(), n);
    ASSERT_EQ(even, even_ref) << "n=" << n;
    ASSERT_EQ(odd, odd_ref) << "n=" << n;
    table.interleave(even.data(), odd.data(), back.data(), n);
    ASSERT_EQ(back, in) << "n=" << n;
  }
}

std::vector<std::int32_t> random_i32(std::size_t n, std::uint64_t seed) {
  image::SplitMix64 rng(seed);
  std::vector<std::int32_t> out(n);
  // Moderate range so the scalar reference's intermediate sums cannot
  // overflow (the LeGall datapath values are small anyway).
  for (auto& v : out) {
    v = static_cast<std::int32_t>(rng.next_below(2'000'001)) - 1'000'000;
  }
  return out;
}

TEST_P(BatchTable, LegallPredictMatchesScalar) {
  const auto& table = *GetParam();
  const auto& ref = scalar_table();
  for (const std::size_t n : kLengths) {
    const auto even = random_i32(n, 3 * n + 1);
    const auto even_next = random_i32(n, 5 * n + 2);
    const auto odd = random_i32(n, 7 * n + 3);
    for (const int sign : {-1, +1}) {
      std::vector<std::int32_t> out(n), out_ref(n);
      table.legall_predict(even.data(), even_next.data(), odd.data(), out.data(), n, sign);
      ref.legall_predict(even.data(), even_next.data(), odd.data(), out_ref.data(), n, sign);
      ASSERT_EQ(out, out_ref) << "n=" << n << " sign=" << sign;
    }
  }
}

TEST_P(BatchTable, LegallUpdateMatchesScalar) {
  const auto& table = *GetParam();
  const auto& ref = scalar_table();
  for (const std::size_t n : kLengths) {
    const auto base = random_i32(n, 13 * n + 1);
    const auto d_prev = random_i32(n, 17 * n + 2);
    const auto d = random_i32(n, 19 * n + 3);
    for (const int sign : {-1, +1}) {
      std::vector<std::int32_t> out(n), out_ref(n);
      table.legall_update(base.data(), d_prev.data(), d.data(), out.data(), n, sign);
      ref.legall_update(base.data(), d_prev.data(), d.data(), out_ref.data(), n, sign);
      ASSERT_EQ(out, out_ref) << "n=" << n << " sign=" << sign;
    }
  }
}

std::string table_name(const ::testing::TestParamInfo<const BatchKernelTable*>& info) {
  return info.param->name;
}

INSTANTIATE_TEST_SUITE_P(AllTables, BatchTable,
                         ::testing::ValuesIn(available_tables().begin(),
                                             available_tables().end()),
                         table_name);

TEST(BatchDispatch, ScalarAlwaysAvailableAndBestLast) {
  const auto tables = available_tables();
  ASSERT_FALSE(tables.empty());
  EXPECT_STREQ(tables.front()->name, "scalar");
  // The dispatched table is one of the available ones.
  const auto& active = batch();
  bool found = false;
  for (const auto* t : tables) found = found || (t == &active);
  EXPECT_TRUE(found);
  EXPECT_STREQ(active.name, active_name());
}

TEST(BatchDispatch, TableForFindsEveryAvailableTable) {
  for (const auto* t : available_tables()) {
    EXPECT_EQ(table_for(t->name), t) << t->name;
  }
  EXPECT_EQ(table_for("no_such_isa"), nullptr);
}

}  // namespace
}  // namespace swc::simd

// Negative-compile probe: CondVar::wait takes the capability-tracked
// UniqueLock; waiting while the analysis believes the lock is not held (the
// shape that silently deadlocks or races with a raw condition_variable)
// must be rejected. The control branch is the house idiom: explicit
// while-loop re-check, no predicate lambda (clang analyzes lambda bodies as
// separate functions, which is why swc::CondVar has no predicate overload).

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"

namespace {

struct Gate {
  swc::Mutex mutex;
  swc::CondVar cv;
  bool open SWC_GUARDED_BY(mutex) = false;
};

}  // namespace

int probe_condvar_wait(Gate& gate);
int probe_condvar_wait(Gate& gate) {
  swc::UniqueLock lock(gate.mutex);
  while (!gate.open) gate.cv.wait(lock);
#if defined(SWC_NEGCOMP)
  lock.unlock();
  // VIOLATION: guarded predicate read after the lock was dropped.
  while (!gate.open) gate.cv.wait(lock);
  lock.lock();
#endif
  return 0;
}

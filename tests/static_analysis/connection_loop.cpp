// Negative-compile probe: every mutating Connection method is loop-thread-
// only. A worker thread pausing a socket it does not own the capability for
// must be rejected at compile time.

#include "serve/connection.hpp"
#include "serve/event_loop.hpp"

int probe_connection_loop(swc::serve::EventLoop& loop, swc::serve::Connection& conn);
int probe_connection_loop(swc::serve::EventLoop& loop, swc::serve::Connection& conn) {
#if defined(SWC_NEGCOMP)
  (void)loop;
  conn.pause_reads();  // VIOLATION: Connection state touched without loop_role
#else
  loop.assert_on_loop_thread();
  conn.pause_reads();
  conn.resume_reads();
#endif
  return 0;
}

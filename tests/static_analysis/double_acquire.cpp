// Negative-compile probe: acquiring a capability that is already held
// (self-deadlock on a non-recursive mutex) must be rejected.

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"

int probe_double_acquire();
int probe_double_acquire() {
  swc::Mutex m;
  m.lock();
#if defined(SWC_NEGCOMP)
  m.lock();  // VIOLATION: second acquire of a held capability
#endif
  m.unlock();
  return 0;
}

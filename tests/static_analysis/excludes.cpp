// Negative-compile probe: calling an SWC_EXCLUDES(mutex) function while
// holding that mutex (self-deadlock through a public re-entry, the classic
// "stats() called from a locked scope" bug) must be rejected.

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"

namespace {

swc::Mutex probe_mutex;
long probe_value SWC_GUARDED_BY(probe_mutex) = 0;

void touch() SWC_EXCLUDES(probe_mutex) {
  swc::MutexLock lock(probe_mutex);
  ++probe_value;
}

}  // namespace

int probe_excludes();
int probe_excludes() {
#if defined(SWC_NEGCOMP)
  probe_mutex.lock();
  touch();  // VIOLATION: EXCLUDES(probe_mutex) entered with it held
  probe_mutex.unlock();
#else
  touch();
#endif
  return 0;
}

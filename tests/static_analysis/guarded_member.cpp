// Negative-compile probe: writing an SWC_GUARDED_BY member without holding
// its mutex must be rejected by clang -Werror=thread-safety. The clean
// branch doubles as a control: it must compile warning-free, and it keeps
// the probe building under every toolchain (the violation branch only
// exists behind SWC_NEGCOMP).

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void bump_locked() SWC_EXCLUDES(mutex_) {
    swc::MutexLock lock(mutex_);
    ++value_;
  }
#if defined(SWC_NEGCOMP)
  // VIOLATION: mutates a guarded member with no lock held.
  void bump_racy() { ++value_; }
#endif

 private:
  swc::Mutex mutex_;
  long value_ SWC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int probe_guarded_member();
int probe_guarded_member() {
  Counter c;
  c.bump_locked();
#if defined(SWC_NEGCOMP)
  c.bump_racy();
#endif
  return 0;
}

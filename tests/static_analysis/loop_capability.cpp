// Negative-compile probe: EventLoop fd registration is loop-thread-only
// (SWC_REQUIRES(loop_role)). Touching it without the capability must be
// rejected; the control branch re-establishes the capability the way every
// real call site does — via assert_on_loop_thread().

#include <cstdint>

#include "serve/event_loop.hpp"

int probe_loop_capability(swc::serve::EventLoop& loop, int fd);
int probe_loop_capability(swc::serve::EventLoop& loop, int fd) {
#if defined(SWC_NEGCOMP)
  // VIOLATION: worker-thread code mutating the reactor's fd table.
  loop.add_fd(fd, 0, [](std::uint32_t) {});
#else
  loop.assert_on_loop_thread();
  loop.add_fd(fd, 0, [](std::uint32_t) {});
#endif
  return 0;
}

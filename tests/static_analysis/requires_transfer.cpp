// Negative-compile probe: calling an SWC_REQUIRES(mutex) function without
// the mutex held must be rejected. This is the lock-transfer contract the
// runtime uses for Strand::enqueue_locked / codec register_locked.

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"

namespace {

class Table {
 public:
  void insert() SWC_EXCLUDES(mutex_) {
    swc::MutexLock lock(mutex_);
    insert_locked();
  }
#if defined(SWC_NEGCOMP)
  // VIOLATION: forwards into the REQUIRES'd internals with no lock held.
  void insert_unlocked() SWC_EXCLUDES(mutex_) { insert_locked(); }
#endif

 private:
  void insert_locked() SWC_REQUIRES(mutex_) { ++entries_; }

  swc::Mutex mutex_;
  long entries_ SWC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int probe_requires_transfer();
int probe_requires_transfer() {
  Table t;
  t.insert();
#if defined(SWC_NEGCOMP)
  t.insert_unlocked();
#endif
  return 0;
}

// Negative-compile probe: SessionManager's session table is loop-thread-
// only; handing it a socket from off-loop (the bug the accept-lambda assert
// guards at runtime) must be rejected at compile time.

#include "serve/event_loop.hpp"
#include "serve/session.hpp"

int probe_session_loop(swc::serve::EventLoop& loop, swc::serve::SessionManager& sessions, int fd);
int probe_session_loop(swc::serve::EventLoop& loop, swc::serve::SessionManager& sessions, int fd) {
#if defined(SWC_NEGCOMP)
  (void)loop;
  sessions.adopt_socket(fd);  // VIOLATION: session table mutated without loop_role
#else
  loop.assert_on_loop_thread();
  sessions.adopt_socket(fd);
#endif
  return 0;
}

// Telemetry core: metric interning, snapshot accumulation/merge semantics
// per metric kind, scoped Span timers and their trace ring, the lock-free
// global aggregate under concurrent flushers and readers, and JSON export.
// Metric names here use a "test." prefix so they never collide with the
// engine/hw metric sets interned by other code in this process.

#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace swc::telemetry {
namespace {

TEST(TelemetryRegistry, InternIsIdempotentAndInfoRoundTrips) {
  const MetricId a = Registry::metric("test.intern.counter", MetricKind::Counter, "items");
  const MetricId b = Registry::metric("test.intern.counter", MetricKind::Counter, "items");
  EXPECT_EQ(a, b);

  const MetricInfo info = Registry::info(a);
  EXPECT_EQ(info.name, "test.intern.counter");
  EXPECT_EQ(info.kind, MetricKind::Counter);
  EXPECT_EQ(info.unit, "items");
}

TEST(TelemetryRegistry, DistinctNamesGetDistinctIds) {
  const MetricId a = Registry::metric("test.distinct.a", MetricKind::Counter);
  const MetricId b = Registry::metric("test.distinct.b", MetricKind::Gauge);
  EXPECT_NE(a, b);
  EXPECT_LT(a, Registry::metric_count());
  EXPECT_LT(b, Registry::metric_count());
}

TEST(TelemetryRegistry, UnregisteredIdReadsAsPlaceholder) {
  EXPECT_EQ(Registry::info(kInvalidMetric).name, "<unregistered>");
}

TEST(TelemetrySnapshot, CounterGaugeTimerSemantics) {
  const MetricId counter = Registry::metric("test.snap.counter", MetricKind::Counter, "bits");
  const MetricId gauge = Registry::metric("test.snap.gauge", MetricKind::Gauge, "bits");
  const MetricId timer = Registry::metric("test.snap.timer", MetricKind::Timer, "ns");

  Snapshot snap;
  snap.add(counter, 10);
  snap.add(counter, 32);
  snap.note_max(gauge, 7);
  snap.note_max(gauge, 3);  // lower level must not reduce the high-water mark
  snap.note(timer, 100);
  snap.note(timer, 50);

  EXPECT_EQ(snap.sum(counter), 42u);
  EXPECT_EQ(snap.count(counter), 2u);
  EXPECT_EQ(snap.max(gauge), 7u);
  EXPECT_EQ(snap.sum(timer), 150u);
  const MetricCell* t = snap.find(timer);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->min, 50u);
  EXPECT_EQ(t->max, 100u);
  EXPECT_DOUBLE_EQ(t->mean(), 75.0);

  // value() is kind-aware: gauges report max, everything else the sum.
  EXPECT_EQ(snap.value(counter), 42u);
  EXPECT_EQ(snap.value(gauge), 7u);
  EXPECT_EQ(snap.value(timer), 150u);
}

TEST(TelemetrySnapshot, UntouchedMetricsReadAsZero) {
  const MetricId id = Registry::metric("test.snap.untouched", MetricKind::Counter);
  const Snapshot snap;
  EXPECT_EQ(snap.sum(id), 0u);
  EXPECT_EQ(snap.max(id), 0u);
  EXPECT_EQ(snap.count(id), 0u);
  EXPECT_EQ(snap.value(id), 0u);
  EXPECT_EQ(snap.find(id), nullptr);
}

TEST(TelemetrySnapshot, MergeIsKindAwareViaValue) {
  const MetricId counter = Registry::metric("test.merge.counter", MetricKind::Counter);
  const MetricId gauge = Registry::metric("test.merge.gauge", MetricKind::Gauge);

  Snapshot a, b;
  a.add(counter, 5);
  a.note_max(gauge, 100);
  b.add(counter, 7);
  b.note_max(gauge, 60);

  a.merge(b);
  EXPECT_EQ(a.value(counter), 12u);   // counters sum across runs
  EXPECT_EQ(a.value(gauge), 100u);    // gauges take the max, never the sum
  EXPECT_EQ(a.count(counter), 2u);

  // Merging an empty snapshot is a no-op in both directions.
  Snapshot empty;
  a.merge(empty);
  EXPECT_EQ(a.value(counter), 12u);
  empty.merge(a);
  EXPECT_EQ(empty.value(gauge), 100u);
}

TEST(TelemetrySpan, RecordsOneTimerSampleWithPlausibleDuration) {
  const MetricId stage = Registry::metric("test.span.stage", MetricKind::Timer, "ns");
  Snapshot snap;
  {
    Span span(snap, stage);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (kSpansEnabled) {
    const MetricCell* c = snap.find(stage);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->count, 1u);
    EXPECT_GE(c->sum, 1'000'000u);  // slept 2 ms; allow a sloppy clock half of it
  } else {
    // Kill switch active: the span must leave no trace at all.
    EXPECT_EQ(snap.count(stage), 0u);
  }
}

TEST(TelemetrySpan, FinishIsIdempotent) {
  const MetricId stage = Registry::metric("test.span.finish", MetricKind::Timer, "ns");
  Snapshot snap;
  Span span(snap, stage);
  span.finish();
  span.finish();
  EXPECT_EQ(snap.count(stage), kSpansEnabled ? 1u : 0u);
}

TEST(TelemetrySpan, TraceRingRetainsRecentEvents) {
  const MetricId stage = Registry::metric("test.span.trace", MetricKind::Timer, "ns");
  Snapshot snap;
  constexpr int kSpans = 5;
  for (int i = 0; i < kSpans; ++i) {
    Span span(snap, stage);
  }
  const auto events = recent_spans();
  if (!kSpansEnabled) {
    EXPECT_TRUE(events.empty());
    return;
  }
  int matched = 0;
  std::uint64_t prev_begin = 0;
  for (const SpanEvent& ev : events) {
    EXPECT_GE(ev.begin_ns, prev_begin);  // recent_spans() sorts by begin time
    prev_begin = ev.begin_ns;
    if (ev.metric == stage) ++matched;
  }
  EXPECT_EQ(matched, kSpans);
}

TEST(TelemetryGlobal, FlushAccumulatesAndResetClears) {
  const MetricId counter = Registry::metric("test.global.basic", MetricKind::Counter);
  Registry::reset_global();

  Snapshot run;
  run.add(counter, 9);
  Registry::flush(run);
  Registry::flush(run);

  const Snapshot global = Registry::global_snapshot();
  EXPECT_EQ(global.sum(counter), 18u);
  EXPECT_EQ(global.count(counter), 2u);

  Registry::reset_global();
  EXPECT_EQ(Registry::global_snapshot().sum(counter), 0u);
}

TEST(TelemetryGlobal, ConcurrentFlushersWithLiveReaderConserveTotals) {
  const MetricId counter = Registry::metric("test.global.concurrent", MetricKind::Counter);
  const MetricId gauge = Registry::metric("test.global.concurrent.hw", MetricKind::Gauge);
  Registry::reset_global();

  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kFlushesPerWorker = 200;

  std::atomic<bool> stop_reading{false};
  std::thread reader([&] {
    // Lock-free sampling while workers flush: sums must only ever grow.
    std::uint64_t last = 0;
    while (!stop_reading.load()) {
      const std::uint64_t now = Registry::global_snapshot().sum(counter);
      EXPECT_GE(now, last);
      last = now;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (std::size_t f = 0; f < kFlushesPerWorker; ++f) {
        Snapshot run;
        run.add(counter, 3);
        run.note_max(gauge, w + 1);
        Registry::flush(run);
      }
    });
  }
  for (auto& t : workers) t.join();
  stop_reading = true;
  reader.join();

  const Snapshot global = Registry::global_snapshot();
  EXPECT_EQ(global.sum(counter), 3u * kWorkers * kFlushesPerWorker);
  EXPECT_EQ(global.max(gauge), kWorkers);  // max of per-worker high-water marks
}

TEST(TelemetryJson, EmitsOnlyPopulatedMetricsWithKindAndUnit) {
  const MetricId used = Registry::metric("test.json.used", MetricKind::Gauge, "bits");
  (void)Registry::metric("test.json.unused", MetricKind::Counter);

  Snapshot snap;
  snap.note_max(used, 1234);
  const std::string json = to_json(snap);
  EXPECT_NE(json.find("\"test.json.used\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"unit\": \"bits\""), std::string::npos);
  EXPECT_NE(json.find("\"max\": 1234"), std::string::npos);
  EXPECT_EQ(json.find("test.json.unused"), std::string::npos);
}

}  // namespace
}  // namespace swc::telemetry

// Telemetry core: metric interning, snapshot accumulation/merge semantics
// per metric kind, scoped Span timers and their trace ring, the lock-free
// global aggregate under concurrent flushers and readers, and JSON export.
// Metric names here use a "test." prefix so they never collide with the
// engine/hw metric sets interned by other code in this process.

#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace swc::telemetry {
namespace {

TEST(TelemetryRegistry, InternIsIdempotentAndInfoRoundTrips) {
  const MetricId a = Registry::metric("test.intern.counter", MetricKind::Counter, "items");
  const MetricId b = Registry::metric("test.intern.counter", MetricKind::Counter, "items");
  EXPECT_EQ(a, b);

  const MetricInfo info = Registry::info(a);
  EXPECT_EQ(info.name, "test.intern.counter");
  EXPECT_EQ(info.kind, MetricKind::Counter);
  EXPECT_EQ(info.unit, "items");
}

TEST(TelemetryRegistry, DistinctNamesGetDistinctIds) {
  const MetricId a = Registry::metric("test.distinct.a", MetricKind::Counter);
  const MetricId b = Registry::metric("test.distinct.b", MetricKind::Gauge);
  EXPECT_NE(a, b);
  EXPECT_LT(a, Registry::metric_count());
  EXPECT_LT(b, Registry::metric_count());
}

TEST(TelemetryRegistry, UnregisteredIdReadsAsPlaceholder) {
  EXPECT_EQ(Registry::info(kInvalidMetric).name, "<unregistered>");
}

TEST(TelemetrySnapshot, CounterGaugeTimerSemantics) {
  const MetricId counter = Registry::metric("test.snap.counter", MetricKind::Counter, "bits");
  const MetricId gauge = Registry::metric("test.snap.gauge", MetricKind::Gauge, "bits");
  const MetricId timer = Registry::metric("test.snap.timer", MetricKind::Timer, "ns");

  Snapshot snap;
  snap.add(counter, 10);
  snap.add(counter, 32);
  snap.note_max(gauge, 7);
  snap.note_max(gauge, 3);  // lower level must not reduce the high-water mark
  snap.note(timer, 100);
  snap.note(timer, 50);

  EXPECT_EQ(snap.sum(counter), 42u);
  EXPECT_EQ(snap.count(counter), 2u);
  EXPECT_EQ(snap.max(gauge), 7u);
  EXPECT_EQ(snap.sum(timer), 150u);
  const MetricCell* t = snap.find(timer);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->min, 50u);
  EXPECT_EQ(t->max, 100u);
  EXPECT_DOUBLE_EQ(t->mean(), 75.0);

  // value() is kind-aware: gauges report max, everything else the sum.
  EXPECT_EQ(snap.value(counter), 42u);
  EXPECT_EQ(snap.value(gauge), 7u);
  EXPECT_EQ(snap.value(timer), 150u);
}

TEST(TelemetrySnapshot, UntouchedMetricsReadAsZero) {
  const MetricId id = Registry::metric("test.snap.untouched", MetricKind::Counter);
  const Snapshot snap;
  EXPECT_EQ(snap.sum(id), 0u);
  EXPECT_EQ(snap.max(id), 0u);
  EXPECT_EQ(snap.count(id), 0u);
  EXPECT_EQ(snap.value(id), 0u);
  EXPECT_EQ(snap.find(id), nullptr);
}

TEST(TelemetrySnapshot, MergeIsKindAwareViaValue) {
  const MetricId counter = Registry::metric("test.merge.counter", MetricKind::Counter);
  const MetricId gauge = Registry::metric("test.merge.gauge", MetricKind::Gauge);

  Snapshot a, b;
  a.add(counter, 5);
  a.note_max(gauge, 100);
  b.add(counter, 7);
  b.note_max(gauge, 60);

  a.merge(b);
  EXPECT_EQ(a.value(counter), 12u);   // counters sum across runs
  EXPECT_EQ(a.value(gauge), 100u);    // gauges take the max, never the sum
  EXPECT_EQ(a.count(counter), 2u);

  // Merging an empty snapshot is a no-op in both directions.
  Snapshot empty;
  a.merge(empty);
  EXPECT_EQ(a.value(counter), 12u);
  empty.merge(a);
  EXPECT_EQ(empty.value(gauge), 100u);
}

TEST(TelemetrySpan, RecordsOneTimerSampleWithPlausibleDuration) {
  const MetricId stage = Registry::metric("test.span.stage", MetricKind::Timer, "ns");
  Snapshot snap;
  {
    Span span(snap, stage);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (kSpansEnabled) {
    const MetricCell* c = snap.find(stage);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->count, 1u);
    EXPECT_GE(c->sum, 1'000'000u);  // slept 2 ms; allow a sloppy clock half of it
  } else {
    // Kill switch active: the span must leave no trace at all.
    EXPECT_EQ(snap.count(stage), 0u);
  }
}

TEST(TelemetrySpan, FinishIsIdempotent) {
  const MetricId stage = Registry::metric("test.span.finish", MetricKind::Timer, "ns");
  Snapshot snap;
  Span span(snap, stage);
  span.finish();
  span.finish();
  EXPECT_EQ(snap.count(stage), kSpansEnabled ? 1u : 0u);
}

TEST(TelemetrySpan, TraceRingRetainsRecentEvents) {
  const MetricId stage = Registry::metric("test.span.trace", MetricKind::Timer, "ns");
  Snapshot snap;
  constexpr int kSpans = 5;
  for (int i = 0; i < kSpans; ++i) {
    Span span(snap, stage);
  }
  const auto events = recent_spans();
  if (!kSpansEnabled) {
    EXPECT_TRUE(events.empty());
    return;
  }
  int matched = 0;
  std::uint64_t prev_begin = 0;
  for (const SpanEvent& ev : events) {
    EXPECT_GE(ev.begin_ns, prev_begin);  // recent_spans() sorts by begin time
    prev_begin = ev.begin_ns;
    if (ev.metric == stage) ++matched;
  }
  EXPECT_EQ(matched, kSpans);
}

TEST(TelemetryGlobal, FlushAccumulatesAndResetClears) {
  const MetricId counter = Registry::metric("test.global.basic", MetricKind::Counter);
  Registry::reset_global();

  Snapshot run;
  run.add(counter, 9);
  Registry::flush(run);
  Registry::flush(run);

  const Snapshot global = Registry::global_snapshot();
  EXPECT_EQ(global.sum(counter), 18u);
  EXPECT_EQ(global.count(counter), 2u);

  Registry::reset_global();
  EXPECT_EQ(Registry::global_snapshot().sum(counter), 0u);
}

TEST(TelemetryGlobal, ConcurrentFlushersWithLiveReaderConserveTotals) {
  const MetricId counter = Registry::metric("test.global.concurrent", MetricKind::Counter);
  const MetricId gauge = Registry::metric("test.global.concurrent.hw", MetricKind::Gauge);
  Registry::reset_global();

  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kFlushesPerWorker = 200;

  std::atomic<bool> stop_reading{false};
  std::thread reader([&] {
    // Lock-free sampling while workers flush: sums must only ever grow.
    std::uint64_t last = 0;
    while (!stop_reading.load()) {
      const std::uint64_t now = Registry::global_snapshot().sum(counter);
      EXPECT_GE(now, last);
      last = now;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (std::size_t f = 0; f < kFlushesPerWorker; ++f) {
        Snapshot run;
        run.add(counter, 3);
        run.note_max(gauge, w + 1);
        Registry::flush(run);
      }
    });
  }
  for (auto& t : workers) t.join();
  stop_reading = true;
  reader.join();

  const Snapshot global = Registry::global_snapshot();
  EXPECT_EQ(global.sum(counter), 3u * kWorkers * kFlushesPerWorker);
  EXPECT_EQ(global.max(gauge), kWorkers);  // max of per-worker high-water marks
}

TEST(TelemetryJson, EmitsOnlyPopulatedMetricsWithKindAndUnit) {
  const MetricId used = Registry::metric("test.json.used", MetricKind::Gauge, "bits");
  (void)Registry::metric("test.json.unused", MetricKind::Counter);

  Snapshot snap;
  snap.note_max(used, 1234);
  const std::string json = to_json(snap);
  EXPECT_NE(json.find("\"test.json.used\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"unit\": \"bits\""), std::string::npos);
  EXPECT_NE(json.find("\"max\": 1234"), std::string::npos);
  EXPECT_EQ(json.find("test.json.unused"), std::string::npos);
}

TEST(TelemetryHistogram, SlotMappingIsMonotoneAndInvertible) {
  // Exact unit buckets below 2^kHistogramSubBits, then log-spaced.
  for (std::uint64_t v = 0; v < (1u << kHistogramSubBits); ++v) {
    EXPECT_EQ(histogram_slot(v), v);
  }
  std::size_t prev = 0;
  for (std::uint64_t v = 1; v < (std::uint64_t{1} << 40); v = v * 3 + 1) {
    const std::size_t slot = histogram_slot(v);
    EXPECT_GE(slot, prev) << "slot mapping must be monotone at v=" << v;
    EXPECT_LT(slot, kHistogramSlots);
    // The slot's lower bound is the smallest value mapping to it.
    EXPECT_LE(histogram_slot_lower(slot), v);
    EXPECT_EQ(histogram_slot(histogram_slot_lower(slot)), slot);
    prev = slot;
  }
  // Relative bucket width stays within 2^-kHistogramSubBits.
  const std::size_t slot = histogram_slot(1'000'000);
  const auto lower = histogram_slot_lower(slot);
  const auto upper = histogram_slot_lower(slot + 1);
  EXPECT_LE(static_cast<double>(upper - lower) / static_cast<double>(lower), 0.1251);
}

TEST(TelemetryHistogram, PercentilesTrackAUniformDistribution) {
  HistogramCell cell;
  for (std::uint64_t v = 1; v <= 10'000; ++v) cell.note(v);
  EXPECT_EQ(cell.count(), 10'000u);
  // ~12.5% bucket resolution: allow a generous envelope around the truth.
  EXPECT_NEAR(cell.percentile(0.50), 5'000.0, 5'000.0 * 0.15);
  EXPECT_NEAR(cell.percentile(0.95), 9'500.0, 9'500.0 * 0.15);
  EXPECT_NEAR(cell.percentile(0.99), 9'900.0, 9'900.0 * 0.15);
  // Percentiles are clamped to the observed range.
  EXPECT_GE(cell.percentile(0.0), 1.0);
  EXPECT_LE(cell.percentile(1.0), 10'000.0);
  EXPECT_EQ(HistogramCell{}.percentile(0.5), 0.0);  // empty: defined zero
}

TEST(TelemetryHistogram, MergeMatchesCombinedRecording) {
  HistogramCell a;
  HistogramCell b;
  HistogramCell combined;
  std::uint64_t rng = 12345;
  for (int i = 0; i < 4'000; ++i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t v = (rng >> 33) % 1'000'000;
    ((i % 2 == 0) ? a : b).note(v);
    combined.note(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.summary.min, combined.summary.min);
  EXPECT_EQ(a.summary.max, combined.summary.max);
  EXPECT_EQ(a.percentile(0.95), combined.percentile(0.95));
}

TEST(TelemetryHistogram, SnapshotNoteHistFeedsSummaryAndPercentiles) {
  const MetricId lat = Registry::metric("test.hist.latency", MetricKind::Histogram, "ns");
  Snapshot snap;
  for (std::uint64_t v = 100; v <= 100'000; v += 100) snap.note_hist(lat, v);
  // The plain cell sees every sample (timer semantics)...
  EXPECT_EQ(snap.count(lat), 1'000u);
  EXPECT_EQ(snap.max(lat), 100'000u);
  // ...and the bucketed histogram supports percentile extraction.
  ASSERT_NE(snap.histogram(lat), nullptr);
  EXPECT_EQ(snap.histogram(lat)->summary.min, 100u);
  EXPECT_NEAR(snap.percentile(lat, 0.5), 50'000.0, 50'000.0 * 0.15);
  EXPECT_EQ(snap.percentile(lat, 0.5), snap.histogram(lat)->percentile(0.5));
  // Metrics without histogram samples report 0, not garbage.
  const MetricId plain = Registry::metric("test.hist.none", MetricKind::Counter);
  snap.add(plain, 5);
  EXPECT_EQ(snap.histogram(plain), nullptr);
  EXPECT_EQ(snap.percentile(plain, 0.5), 0.0);
}

TEST(TelemetryHistogram, SnapshotMergeCombinesHistograms) {
  const MetricId lat = Registry::metric("test.hist.merge", MetricKind::Histogram, "ns");
  Snapshot a;
  Snapshot b;
  for (std::uint64_t v = 1; v <= 100; ++v) a.note_hist(lat, v);
  for (std::uint64_t v = 10'001; v <= 10'100; ++v) b.note_hist(lat, v);
  a.merge(b);
  ASSERT_NE(a.histogram(lat), nullptr);
  EXPECT_EQ(a.histogram(lat)->count(), 200u);
  EXPECT_LE(a.percentile(lat, 0.25), 200.0);
  EXPECT_GE(a.percentile(lat, 0.75), 9'000.0);
}

TEST(TelemetryHistogram, GlobalFlushRoundTripsBuckets) {
  const MetricId lat = Registry::metric("test.hist.global", MetricKind::Histogram, "ns");
  Registry::reset_global();

  Snapshot run;
  for (std::uint64_t v = 1; v <= 1'000; ++v) run.note_hist(lat, v * 10);
  Registry::flush(run);
  Registry::flush(run);  // second run doubles every bucket

  const Snapshot global = Registry::global_snapshot();
  ASSERT_NE(global.histogram(lat), nullptr);
  EXPECT_EQ(global.histogram(lat)->count(), 2'000u);
  EXPECT_NEAR(global.percentile(lat, 0.5), run.percentile(lat, 0.5),
              global.percentile(lat, 0.5) * 0.13);

  Registry::reset_global();
  EXPECT_EQ(Registry::global_snapshot().histogram(lat), nullptr);
}

TEST(TelemetryHistogram, JsonCarriesPercentilesForHistogramMetrics) {
  const MetricId lat = Registry::metric("test.hist.json", MetricKind::Histogram, "ns");
  Snapshot snap;
  for (std::uint64_t v = 1; v <= 1'000; ++v) snap.note_hist(lat, v);
  const std::string json = to_json(snap);
  const auto pos = json.find("test.hist.json");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_NE(json.find("\"p50\"", pos), std::string::npos);
  EXPECT_NE(json.find("\"p95\"", pos), std::string::npos);
  EXPECT_NE(json.find("\"p99\"", pos), std::string::npos);
}

}  // namespace
}  // namespace swc::telemetry

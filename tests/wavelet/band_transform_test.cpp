// The row-blocked band transform must be bit-identical to the per-pair
// column decomposer (they are two layouts of the same wrap-mod-256 lifting),
// and must round-trip exactly — under every available SIMD table.

#include "wavelet/band_transform.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "image/rng.hpp"
#include "simd/batch_kernels.hpp"
#include "wavelet/column_decomposer.hpp"

namespace swc::wavelet {
namespace {

std::vector<std::uint8_t> random_band(std::size_t n, std::size_t w, std::uint64_t seed) {
  image::SplitMix64 rng(seed);
  std::vector<std::uint8_t> band(n * w);
  for (auto& v : band) v = static_cast<std::uint8_t>(rng.next());
  return band;
}

struct Geometry {
  std::size_t n, w;
};

const Geometry kGeometries[] = {{2, 2}, {2, 64}, {8, 8}, {8, 34}, {16, 512}, {64, 66}};

TEST(BandTransform, MatchesColumnDecomposerBitExactly) {
  for (const auto* table : simd::available_tables()) {
    for (const auto [n, w] : kGeometries) {
      const auto band = random_band(n, w, 42 * n + w);
      BandPlanes planes;
      BandScratch scratch;
      decompose_band_into(band.data(), n, w, planes, scratch, *table);

      std::vector<std::uint8_t> c0(n), c1(n), even(n), odd(n);
      CoeffColumnPair pair;
      for (std::size_t j = 0; 2 * j + 1 < w; ++j) {
        for (std::size_t y = 0; y < n; ++y) {
          c0[y] = band[y * w + 2 * j];
          c1[y] = band[y * w + 2 * j + 1];
        }
        decompose_column_pair_into(c0, c1, pair);
        gather_column_pair(planes, j, even.data(), odd.data());
        ASSERT_EQ(even, pair.even) << table->name << " n=" << n << " w=" << w << " j=" << j;
        ASSERT_EQ(odd, pair.odd) << table->name << " n=" << n << " w=" << w << " j=" << j;
      }
    }
  }
}

TEST(BandTransform, RoundTripsExactly) {
  for (const auto* table : simd::available_tables()) {
    for (const auto [n, w] : kGeometries) {
      const auto band = random_band(n, w, 7 * n + 3 * w);
      BandPlanes planes;
      BandScratch scratch;
      decompose_band_into(band.data(), n, w, planes, scratch, *table);
      std::vector<std::uint8_t> back(n * w);
      recompose_band_into(planes, n, w, back.data(), scratch, *table);
      ASSERT_EQ(back, band) << table->name << " n=" << n << " w=" << w;
    }
  }
}

TEST(BandTransform, ScatterGatherRoundTrip) {
  const std::size_t n = 8, w = 32;
  const auto band = random_band(n, w, 99);
  BandPlanes planes, rebuilt;
  BandScratch scratch;
  decompose_band_into(band.data(), n, w, planes, scratch);
  rebuilt.resize(n / 2, w / 2);
  std::vector<std::uint8_t> even(n), odd(n);
  for (std::size_t j = 0; j < w / 2; ++j) {
    gather_column_pair(planes, j, even.data(), odd.data());
    scatter_column_pair(rebuilt, j, even.data(), odd.data());
  }
  EXPECT_EQ(rebuilt.ll, planes.ll);
  EXPECT_EQ(rebuilt.lh, planes.lh);
  EXPECT_EQ(rebuilt.hl, planes.hl);
  EXPECT_EQ(rebuilt.hh, planes.hh);
}

TEST(BandTransform, RejectsBadGeometry) {
  BandPlanes planes;
  BandScratch scratch;
  std::vector<std::uint8_t> band(8);
  EXPECT_THROW(decompose_band_into(band.data(), 0, 8, planes, scratch), std::invalid_argument);
  EXPECT_THROW(decompose_band_into(band.data(), 2, 3, planes, scratch), std::invalid_argument);
  EXPECT_THROW(decompose_band_into(band.data(), 3, 2, planes, scratch), std::invalid_argument);
  decompose_band_into(band.data(), 2, 4, planes, scratch);
  EXPECT_THROW(recompose_band_into(planes, 4, 4, band.data(), scratch), std::invalid_argument);
}

}  // namespace
}  // namespace swc::wavelet

#include "wavelet/column_decomposer.hpp"

#include <gtest/gtest.h>

#include "image/rng.hpp"
#include "image/synthetic.hpp"

namespace swc::wavelet {
namespace {

std::vector<std::uint8_t> random_column(std::size_t n, std::uint64_t seed) {
  image::SplitMix64 rng(seed);
  std::vector<std::uint8_t> col(n);
  for (auto& v : col) v = static_cast<std::uint8_t>(rng.next() & 0xFF);
  return col;
}

class ColumnPairRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ColumnPairRoundTrip, LosslessForRandomColumns) {
  const std::size_t n = GetParam();
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const auto c0 = random_column(n, seed * 2);
    const auto c1 = random_column(n, seed * 2 + 1);
    const CoeffColumnPair coeffs = decompose_column_pair(c0, c1);
    const PixelColumnPair pixels = recompose_column_pair(coeffs.even, coeffs.odd);
    EXPECT_EQ(pixels.col0, c0) << "n=" << n << " seed=" << seed;
    EXPECT_EQ(pixels.col1, c1);
  }
}

INSTANTIATE_TEST_SUITE_P(WindowSizes, ColumnPairRoundTrip,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128));

TEST(ColumnDecomposer, RejectsMismatchedLengths) {
  const std::vector<std::uint8_t> a(4), b(6);
  EXPECT_THROW((void)decompose_column_pair(a, b), std::invalid_argument);
}

TEST(ColumnDecomposer, RejectsOddLength) {
  const std::vector<std::uint8_t> a(3), b(3);
  EXPECT_THROW((void)decompose_column_pair(a, b), std::invalid_argument);
}

TEST(ColumnDecomposer, RejectsEmpty) {
  const std::vector<std::uint8_t> a, b;
  EXPECT_THROW((void)decompose_column_pair(a, b), std::invalid_argument);
}

TEST(ColumnDecomposer, SubBandLayoutMatchesQuadrants) {
  // Flat columns: everything lands in LL (top half of the even column).
  const std::vector<std::uint8_t> c0(8, 100), c1(8, 100);
  const CoeffColumnPair coeffs = decompose_column_pair(c0, c1);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(coeffs.even[k], 100);     // LL
    EXPECT_EQ(coeffs.even[4 + k], 0);   // LH
    EXPECT_EQ(coeffs.odd[k], 0);        // HL
    EXPECT_EQ(coeffs.odd[4 + k], 0);    // HH
  }
}

TEST(ColumnDecomposer, BandAtMapsQuadrants) {
  EXPECT_EQ(band_at(0, 0, 8), SubBand::LL);
  EXPECT_EQ(band_at(0, 4, 8), SubBand::LH);
  EXPECT_EQ(band_at(1, 0, 8), SubBand::HL);
  EXPECT_EQ(band_at(1, 4, 8), SubBand::HH);
  EXPECT_EQ(top_band(false), SubBand::LL);
  EXPECT_EQ(bottom_band(true), SubBand::HH);
}

TEST(ColumnDecomposer, RegionRoundTripsNaturalImage) {
  const image::ImageU8 img = image::make_natural_image(32, 16);
  const image::ImageU8 coeffs = decompose_region(img);
  EXPECT_EQ(recompose_region(coeffs), img);
}

TEST(ColumnDecomposer, RegionRoundTripsRandomImage) {
  const image::ImageU8 img = image::make_random_image(24, 12, 5);
  EXPECT_EQ(recompose_region(decompose_region(img)), img);
}

TEST(ColumnDecomposer, RegionRejectsOddDimensions) {
  EXPECT_THROW((void)decompose_region(image::ImageU8(5, 4)), std::invalid_argument);
  EXPECT_THROW((void)decompose_region(image::ImageU8(4, 5)), std::invalid_argument);
}

TEST(ColumnDecomposer, SmoothImageConcentratesEnergyInLL) {
  const image::ImageU8 img = image::make_natural_image(64, 64);
  const image::ImageU8 coeffs = decompose_region(img);
  std::size_t ll_nonzero = 0, detail_nonzero = 0, ll_count = 0, detail_count = 0;
  for (std::size_t y = 0; y < coeffs.height(); ++y) {
    for (std::size_t x = 0; x < coeffs.width(); ++x) {
      const bool is_ll = band_at(x, y, coeffs.height()) == SubBand::LL;
      const bool nz = coeffs.at(x, y) != 0;
      if (is_ll) {
        ++ll_count;
        ll_nonzero += nz;
      } else {
        ++detail_count;
        detail_nonzero += nz;
      }
    }
  }
  const double ll_rate = static_cast<double>(ll_nonzero) / static_cast<double>(ll_count);
  const double detail_rate = static_cast<double>(detail_nonzero) / static_cast<double>(detail_count);
  EXPECT_GT(ll_rate, detail_rate);  // "most information in the approximation sub-band"
}

}  // namespace
}  // namespace swc::wavelet

#include "wavelet/haar.hpp"

#include <gtest/gtest.h>

namespace swc::wavelet {
namespace {

TEST(HaarWide, ForwardMatchesPaperEquations) {
  // H = X0 - X1; L = X1 + H/2 (arithmetic shift) = floor((X0 + X1) / 2).
  const HaarPair p = haar_forward(13, 7);
  EXPECT_EQ(p.h, 6);
  EXPECT_EQ(p.l, 10);
}

TEST(HaarWide, LowPassIsFlooredAverage) {
  for (int a = 0; a < 256; a += 7) {
    for (int b = 0; b < 256; b += 5) {
      const HaarPair p = haar_forward(a, b);
      // x1 + ((x0 - x1) >> 1) = floor((x0 + x1) / 2) for integers.
      EXPECT_EQ(p.l, (a + b) >> 1) << a << "," << b;
    }
  }
}

TEST(HaarWide, RoundTripExhaustive8Bit) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      const HaarPair p = haar_forward(a, b);
      const auto [x0, x1] = haar_inverse(p.l, p.h);
      ASSERT_EQ(x0, a);
      ASSERT_EQ(x1, b);
    }
  }
}

TEST(HaarWide, RoundTripNegativeInputs) {
  for (int a = -300; a <= 300; a += 13) {
    for (int b = -300; b <= 300; b += 11) {
      const HaarPair p = haar_forward(a, b);
      const auto [x0, x1] = haar_inverse(p.l, p.h);
      ASSERT_EQ(x0, a);
      ASSERT_EQ(x1, b);
    }
  }
}

TEST(Haar2dWide, RoundTripSampledBlocks) {
  for (int a = 0; a < 256; a += 51) {
    for (int b = 0; b < 256; b += 37) {
      for (int c = 0; c < 256; c += 43) {
        for (int d = 0; d < 256; d += 29) {
          const HaarBlock coeffs = haar2d_forward(a, b, c, d);
          const PixelBlock p = haar2d_inverse(coeffs);
          ASSERT_EQ(p.x00, a);
          ASSERT_EQ(p.x01, b);
          ASSERT_EQ(p.x10, c);
          ASSERT_EQ(p.x11, d);
        }
      }
    }
  }
}

TEST(Haar2dWide, FlatBlockHasOnlyApproximation) {
  const HaarBlock c = haar2d_forward(90, 90, 90, 90);
  EXPECT_EQ(c.ll, 90);
  EXPECT_EQ(c.lh, 0);
  EXPECT_EQ(c.hl, 0);
  EXPECT_EQ(c.hh, 0);
}

TEST(Haar2dWide, HorizontalEdgeActivatesLh) {
  // Rows differ, columns within a row equal: detail lands in the pair of the
  // two low-pass values (LH in our naming).
  const HaarBlock c = haar2d_forward(100, 100, 20, 20);
  EXPECT_NE(c.lh, 0);
  EXPECT_EQ(c.hl, 0);
  EXPECT_EQ(c.hh, 0);
}

TEST(Haar2dWide, VerticalEdgeActivatesHl) {
  const HaarBlock c = haar2d_forward(100, 20, 100, 20);
  EXPECT_EQ(c.lh, 0);
  EXPECT_NE(c.hl, 0);
  EXPECT_EQ(c.hh, 0);
}

TEST(HaarWrap8, RoundTripExhaustiveAllBytePairs) {
  // The wrap-mod-256 lifting is invertible for every (x0, x1) in Z/256Z —
  // the fact that makes the paper's 8-bit datapath lossless. Exhaustive.
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      const auto x0 = static_cast<std::uint8_t>(a);
      const auto x1 = static_cast<std::uint8_t>(b);
      const HaarPairU8 p = haar_forward_u8(x0, x1);
      const auto [r0, r1] = haar_inverse_u8(p.l, p.h);
      ASSERT_EQ(r0, x0) << a << "," << b;
      ASSERT_EQ(r1, x1) << a << "," << b;
    }
  }
}

TEST(HaarWrap8, DetailIsWrappedDifference) {
  for (int a = 0; a < 256; a += 3) {
    for (int b = 0; b < 256; b += 5) {
      const HaarPairU8 p =
          haar_forward_u8(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b));
      EXPECT_EQ(p.h, static_cast<std::uint8_t>(a - b));
    }
  }
}

TEST(HaarStoredInterpretation, SignHelpersRoundTrip) {
  for (int v = 0; v < 256; ++v) {
    const auto stored = static_cast<std::uint8_t>(v);
    EXPECT_EQ(as_stored(as_signed(stored)), stored);
  }
}

TEST(HaarStoredInterpretation, Asr1MatchesSignedShift) {
  EXPECT_EQ(asr1_u8(as_stored(std::int8_t{-6})), as_stored(std::int8_t{-3}));
  EXPECT_EQ(asr1_u8(as_stored(std::int8_t{-1})), as_stored(std::int8_t{-1}));
  EXPECT_EQ(asr1_u8(6), 3);
  EXPECT_EQ(asr1_u8(7), 3);
}

}  // namespace
}  // namespace swc::wavelet

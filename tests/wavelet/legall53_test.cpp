#include "wavelet/legall53.hpp"

#include <gtest/gtest.h>

#include "image/rng.hpp"
#include "image/synthetic.hpp"

namespace swc::wavelet {
namespace {

std::vector<std::int32_t> random_signal(std::size_t n, std::uint64_t seed, int lo, int hi) {
  image::SplitMix64 rng(seed);
  std::vector<std::int32_t> s(n);
  for (auto& v : s) {
    v = lo + static_cast<std::int32_t>(rng.next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }
  return s;
}

class Legall1d : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Legall1d, RoundTripsRandomSignals) {
  const std::size_t n = GetParam();
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const auto x = random_signal(n, seed, -300, 300);
    std::vector<std::int32_t> coeffs(n), back(n);
    legall53_forward_1d(x, coeffs);
    legall53_inverse_1d(coeffs, back);
    ASSERT_EQ(back, x) << "n=" << n << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, Legall1d, ::testing::Values(2, 4, 6, 8, 16, 64, 128));

// Loop-form reference of the lifting equations, independent of the batched
// kernel implementation behind legall53_forward_1d_into.
void reference_forward(const std::vector<std::int32_t>& x, std::vector<std::int32_t>& out) {
  const std::size_t n = x.size();
  const std::size_t half = n / 2;
  std::vector<std::int32_t> d(half);
  for (std::size_t i = 0; i < half; ++i) {
    const std::int32_t right = (2 * i + 2 < n) ? x[2 * i + 2] : x[n - 2];
    d[i] = x[2 * i + 1] - ((x[2 * i] + right) >> 1);
  }
  for (std::size_t i = 0; i < half; ++i) {
    const std::int32_t d_prev = d[i == 0 ? 0 : i - 1];
    out[i] = x[2 * i] + ((d_prev + d[i] + 2) >> 2);
  }
  for (std::size_t i = 0; i < half; ++i) out[half + i] = d[i];
}

TEST(Legall53Into, MatchesLoopReferenceAtManyLengths) {
  Legall53Scratch scratch;
  for (const std::size_t n : {2u, 4u, 6u, 10u, 30u, 62u, 254u, 256u}) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const auto x = random_signal(n, 400 + seed, -512, 512);
      std::vector<std::int32_t> got(n), expected(n), back(n);
      legall53_forward_1d_into(x, got, scratch);
      reference_forward(x, expected);
      ASSERT_EQ(got, expected) << "n=" << n << " seed=" << seed;
      legall53_inverse_1d_into(got, back, scratch);
      ASSERT_EQ(back, x) << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(Legall53Into, PlainFormsDelegateToInto) {
  Legall53Scratch scratch;
  const auto x = random_signal(64, 1234, -300, 300);
  std::vector<std::int32_t> a(64), b(64);
  legall53_forward_1d(x, a);
  legall53_forward_1d_into(x, b, scratch);
  EXPECT_EQ(a, b);
}

TEST(Legall53, ConstantSignalHasZeroDetails) {
  const std::vector<std::int32_t> x(16, 77);
  std::vector<std::int32_t> coeffs(16);
  legall53_forward_1d(x, coeffs);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(coeffs[i], 77);      // low-pass preserves DC exactly
    EXPECT_EQ(coeffs[8 + i], 0);   // high-pass vanishes
  }
}

TEST(Legall53, LinearRampHasZeroInteriorDetails) {
  // The 5/3 predict is exact for linear signals (unlike Haar) — the reason
  // it compresses smooth gradients better.
  std::vector<std::int32_t> x(16);
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<std::int32_t>(10 * i);
  std::vector<std::int32_t> coeffs(16);
  legall53_forward_1d(x, coeffs);
  for (std::size_t i = 8; i + 1 < 16; ++i) EXPECT_EQ(coeffs[i], 0) << i;
}

TEST(Legall53, RejectsBadLengths) {
  std::vector<std::int32_t> odd(5), out5(5), two(2);
  EXPECT_THROW(legall53_forward_1d(odd, out5), std::invalid_argument);
  EXPECT_THROW(legall53_forward_1d(two, out5), std::invalid_argument);
}

TEST(Legall53, TwoDimensionalRoundTripNatural) {
  const auto img = image::make_natural_image(64, 32, {.seed = 4});
  EXPECT_EQ(legall53_inverse_2d(legall53_forward_2d(img)), img);
}

TEST(Legall53, TwoDimensionalRoundTripRandom) {
  const auto img = image::make_random_image(32, 32, 9);
  EXPECT_EQ(legall53_inverse_2d(legall53_forward_2d(img)), img);
}

TEST(Legall53, TwoDimensionalRoundTripExtremes) {
  const auto img = image::make_checkerboard_image(16, 16, 1);
  EXPECT_EQ(legall53_inverse_2d(legall53_forward_2d(img)), img);
}

TEST(Legall53, RejectsOddDimensions) {
  EXPECT_THROW((void)legall53_forward_2d(image::ImageU8(5, 4)), std::invalid_argument);
}

TEST(Legall53, HardwareCostExceedsHaar) {
  // The quantitative form of the paper's Section IV-C argument.
  EXPECT_GT(legall53_cost().adders_per_sample, haar_cost().adders_per_sample);
  EXPECT_GT(legall53_cost().column_taps, haar_cost().column_taps);
  EXPECT_GE(legall53_cost().pipeline_stages, haar_cost().pipeline_stages);
}

}  // namespace
}  // namespace swc::wavelet

#include "wavelet/legall53.hpp"

#include <gtest/gtest.h>

#include "image/rng.hpp"
#include "image/synthetic.hpp"

namespace swc::wavelet {
namespace {

std::vector<std::int32_t> random_signal(std::size_t n, std::uint64_t seed, int lo, int hi) {
  image::SplitMix64 rng(seed);
  std::vector<std::int32_t> s(n);
  for (auto& v : s) {
    v = lo + static_cast<std::int32_t>(rng.next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }
  return s;
}

class Legall1d : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Legall1d, RoundTripsRandomSignals) {
  const std::size_t n = GetParam();
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const auto x = random_signal(n, seed, -300, 300);
    std::vector<std::int32_t> coeffs(n), back(n);
    legall53_forward_1d(x, coeffs);
    legall53_inverse_1d(coeffs, back);
    ASSERT_EQ(back, x) << "n=" << n << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, Legall1d, ::testing::Values(2, 4, 6, 8, 16, 64, 128));

TEST(Legall53, ConstantSignalHasZeroDetails) {
  const std::vector<std::int32_t> x(16, 77);
  std::vector<std::int32_t> coeffs(16);
  legall53_forward_1d(x, coeffs);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(coeffs[i], 77);      // low-pass preserves DC exactly
    EXPECT_EQ(coeffs[8 + i], 0);   // high-pass vanishes
  }
}

TEST(Legall53, LinearRampHasZeroInteriorDetails) {
  // The 5/3 predict is exact for linear signals (unlike Haar) — the reason
  // it compresses smooth gradients better.
  std::vector<std::int32_t> x(16);
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<std::int32_t>(10 * i);
  std::vector<std::int32_t> coeffs(16);
  legall53_forward_1d(x, coeffs);
  for (std::size_t i = 8; i + 1 < 16; ++i) EXPECT_EQ(coeffs[i], 0) << i;
}

TEST(Legall53, RejectsBadLengths) {
  std::vector<std::int32_t> odd(5), out5(5), two(2);
  EXPECT_THROW(legall53_forward_1d(odd, out5), std::invalid_argument);
  EXPECT_THROW(legall53_forward_1d(two, out5), std::invalid_argument);
}

TEST(Legall53, TwoDimensionalRoundTripNatural) {
  const auto img = image::make_natural_image(64, 32, {.seed = 4});
  EXPECT_EQ(legall53_inverse_2d(legall53_forward_2d(img)), img);
}

TEST(Legall53, TwoDimensionalRoundTripRandom) {
  const auto img = image::make_random_image(32, 32, 9);
  EXPECT_EQ(legall53_inverse_2d(legall53_forward_2d(img)), img);
}

TEST(Legall53, TwoDimensionalRoundTripExtremes) {
  const auto img = image::make_checkerboard_image(16, 16, 1);
  EXPECT_EQ(legall53_inverse_2d(legall53_forward_2d(img)), img);
}

TEST(Legall53, RejectsOddDimensions) {
  EXPECT_THROW((void)legall53_forward_2d(image::ImageU8(5, 4)), std::invalid_argument);
}

TEST(Legall53, HardwareCostExceedsHaar) {
  // The quantitative form of the paper's Section IV-C argument.
  EXPECT_GT(legall53_cost().adders_per_sample, haar_cost().adders_per_sample);
  EXPECT_GT(legall53_cost().column_taps, haar_cost().column_taps);
  EXPECT_GE(legall53_cost().pipeline_stages, haar_cost().pipeline_stages);
}

}  // namespace
}  // namespace swc::wavelet

// Property tests for the key fact DESIGN.md relies on: Haar lifting is
// exactly invertible in 8-bit registers with mod-256 wraparound, because
// every lifting step has the form a' = a +/- f(b) with b stored unmodified.
// This is what makes the paper's 8-bit datapath lossless at threshold 0 even
// though H = x0 - x1 does not fit 8 bits in general.

#include <gtest/gtest.h>

#include "wavelet/haar.hpp"

namespace swc::wavelet {
namespace {

TEST(ModularLifting, RoundTripExhaustiveAllPairs) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      const HaarPairU8 p =
          haar_forward_u8(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b));
      const auto [x0, x1] = haar_inverse_u8(p.l, p.h);
      ASSERT_EQ(static_cast<int>(x0), a);
      ASSERT_EQ(static_cast<int>(x1), b);
    }
  }
}

TEST(ModularLifting, AgreesWithWideMathWhenInRange) {
  // Wherever the wide-arithmetic coefficients fit in signed 8 bits, the
  // wrapped datapath produces the same stored values.
  for (int a = 0; a < 256; a += 3) {
    for (int b = 0; b < 256; b += 5) {
      const HaarPair wide = haar_forward(a, b);
      const HaarPairU8 wrapped =
          haar_forward_u8(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b));
      if (wide.h >= -128 && wide.h <= 127) {
        EXPECT_EQ(as_signed(wrapped.h), wide.h) << a << "," << b;
      }
      // The wrapped pair always reconstructs regardless.
      const auto [x0, x1] = haar_inverse_u8(wrapped.l, wrapped.h);
      EXPECT_EQ(x0, a);
      EXPECT_EQ(x1, b);
    }
  }
}

TEST(ModularLifting, DetailWrapsExactlyWhereExpected) {
  // 255 - 0 = 255 wraps to -1 in two's complement; inversion still exact.
  const HaarPairU8 p = haar_forward_u8(255, 0);
  EXPECT_EQ(as_signed(p.h), -1);
  const auto [x0, x1] = haar_inverse_u8(p.l, p.h);
  EXPECT_EQ(x0, 255);
  EXPECT_EQ(x1, 0);
}

TEST(ModularLifting2d, RoundTripExhaustiveSampledBlocks) {
  for (int a = 0; a < 256; a += 17) {
    for (int b = 0; b < 256; b += 13) {
      for (int c = 0; c < 256; c += 19) {
        for (int d = 0; d < 256; d += 23) {
          const HaarBlockU8 coeffs = haar2d_forward_u8(
              static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
              static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
          const PixelBlockU8 p = haar2d_inverse_u8(coeffs);
          ASSERT_EQ(static_cast<int>(p.x00), a);
          ASSERT_EQ(static_cast<int>(p.x01), b);
          ASSERT_EQ(static_cast<int>(p.x10), c);
          ASSERT_EQ(static_cast<int>(p.x11), d);
        }
      }
    }
  }
}

TEST(ModularLifting2d, ExtremeCornersRoundTrip) {
  for (const int a : {0, 255}) {
    for (const int b : {0, 255}) {
      for (const int c : {0, 255}) {
        for (const int d : {0, 255}) {
          const HaarBlockU8 coeffs = haar2d_forward_u8(
              static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
              static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
          const PixelBlockU8 p = haar2d_inverse_u8(coeffs);
          EXPECT_EQ(static_cast<int>(p.x00), a);
          EXPECT_EQ(static_cast<int>(p.x01), b);
          EXPECT_EQ(static_cast<int>(p.x10), c);
          EXPECT_EQ(static_cast<int>(p.x11), d);
        }
      }
    }
  }
}

TEST(ModularLifting2d, FlatBlockKeepsZeroDetails) {
  const HaarBlockU8 c = haar2d_forward_u8(200, 200, 200, 200);
  EXPECT_EQ(c.ll, 200);  // stored 200 reads as -56 signed; value preserved mod 256
  EXPECT_EQ(c.lh, 0);
  EXPECT_EQ(c.hl, 0);
  EXPECT_EQ(c.hh, 0);
}

}  // namespace
}  // namespace swc::wavelet

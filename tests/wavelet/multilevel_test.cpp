#include "wavelet/multilevel.hpp"

#include <gtest/gtest.h>

#include "image/synthetic.hpp"

namespace swc::wavelet {
namespace {

class MultilevelRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(MultilevelRoundTrip, LosslessOnNaturalImage) {
  const int levels = GetParam();
  const image::ImageU8 img = image::make_natural_image(64, 32);
  const ImageI32 coeffs = forward_multilevel(img, levels);
  EXPECT_EQ(inverse_multilevel(coeffs, levels), img);
}

TEST_P(MultilevelRoundTrip, LosslessOnRandomImage) {
  const int levels = GetParam();
  const image::ImageU8 img = image::make_random_image(32, 32, 11);
  EXPECT_EQ(inverse_multilevel(forward_multilevel(img, levels), levels), img);
}

INSTANTIATE_TEST_SUITE_P(Levels, MultilevelRoundTrip, ::testing::Values(1, 2, 3));

TEST(Multilevel, RejectsBadLevelCount) {
  const image::ImageU8 img(8, 8);
  EXPECT_THROW((void)forward_multilevel(img, 0), std::invalid_argument);
}

TEST(Multilevel, RejectsIndivisibleDimensions) {
  const image::ImageU8 img(12, 12);  // 12 % 8 != 0
  EXPECT_THROW((void)forward_multilevel(img, 3), std::invalid_argument);
}

TEST(Multilevel, FlatImageConcentratesInSinglePixel) {
  const image::ImageU8 img = image::make_flat_image(16, 16, 77);
  const ImageI32 coeffs = forward_multilevel(img, 4);
  EXPECT_EQ(coeffs.at(0, 0), 77);
  std::size_t nonzero = 0;
  for (const auto v : coeffs.pixels()) nonzero += (v != 0);
  EXPECT_EQ(nonzero, 1u);
}

TEST(Multilevel, SecondLevelOnlyTouchesLLQuadrant) {
  const image::ImageU8 img = image::make_natural_image(32, 32);
  const ImageI32 one = forward_multilevel(img, 1);
  const ImageI32 two = forward_multilevel(img, 2);
  // Everything outside the 16x16 LL quadrant is untouched by level 2.
  for (std::size_t y = 0; y < 32; ++y) {
    for (std::size_t x = 0; x < 32; ++x) {
      if (x >= 16 || y >= 16) {
        ASSERT_EQ(one.at(x, y), two.at(x, y)) << x << "," << y;
      }
    }
  }
}

TEST(Multilevel, DetailCoefficientsAreSmallOnSmoothImage) {
  auto mean_detail_abs = [](const image::ImageU8& img) {
    const ImageI32 coeffs = forward_multilevel(img, 1);
    double detail_abs = 0.0;
    std::size_t count = 0;
    for (std::size_t y = 0; y < img.height(); ++y) {
      for (std::size_t x = img.width() / 2; x < img.width(); ++x) {  // HL/HH half
        detail_abs += std::abs(coeffs.at(x, y));
        ++count;
      }
    }
    return detail_abs / static_cast<double>(count);
  };
  image::NaturalImageParams p;
  p.detail_energy = 0.2;
  p.octaves = 3;
  const double smooth = mean_detail_abs(image::make_natural_image(64, 64, p));
  const double random = mean_detail_abs(image::make_random_image(64, 64, 2));
  EXPECT_LT(smooth, 10.0);
  EXPECT_LT(smooth, random / 5.0);  // random bytes: mean |detail| ~ 60
}

}  // namespace
}  // namespace swc::wavelet

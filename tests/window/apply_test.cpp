#include "window/apply.hpp"

#include <gtest/gtest.h>

#include "image/synthetic.hpp"
#include "kernels/kernels.hpp"

namespace swc::window {
namespace {

core::EngineConfig make_config(std::size_t w, std::size_t h, std::size_t n, int threshold = 0) {
  core::EngineConfig config;
  config.spec = {w, h, n};
  config.codec.threshold = threshold;
  return config;
}

TEST(Apply, OutputDimensionsAreValidPositionCount) {
  const auto [ow, oh] = output_dims({40, 30, 8});
  EXPECT_EQ(ow, 33u);
  EXPECT_EQ(oh, 23u);
}

TEST(Apply, TraditionalBoxMeanOnFlatImage) {
  const auto img = image::make_flat_image(16, 12, 80);
  const auto out = apply_traditional(img, 4, kernels::BoxMeanKernel{});
  EXPECT_EQ(out.width(), 13u);
  EXPECT_EQ(out.height(), 9u);
  for (const auto v : out.pixels()) EXPECT_EQ(v, 80);
}

TEST(Apply, AllFourEnginesAgreeLosslessly) {
  const auto img = image::make_natural_image(32, 24, {.seed = 21});
  const std::size_t n = 4;
  const auto config = make_config(32, 24, n, 0);
  const kernels::BoxMeanKernel kernel;

  const auto trad = apply_traditional(img, n, kernel);
  const auto comp = apply_compressed(img, config, kernel);
  const auto cyc_trad = apply_cycle_traditional(img, n, kernel);
  const auto cyc_comp = apply_cycle_compressed(img, config, kernel);

  EXPECT_EQ(trad, comp.output);
  EXPECT_EQ(trad, cyc_trad.output);
  EXPECT_EQ(trad, cyc_comp.output);
  EXPECT_EQ(cyc_trad.cycles, 32u * 24u);
  EXPECT_EQ(cyc_comp.cycles, 32u * 24u);
  EXPECT_FALSE(cyc_comp.memory_overflowed);
}

TEST(Apply, CompressedResultCarriesReconstructionAndStats) {
  const auto img = image::make_natural_image(32, 24);
  const auto result = apply_compressed(img, make_config(32, 24, 4, 0), kernels::BoxMeanKernel{});
  EXPECT_EQ(result.reconstructed, img);  // lossless
  EXPECT_FALSE(result.stats.per_row.empty());
}

TEST(Apply, LossyEnginesStillProduceFullOutputPlane) {
  const auto img = image::make_natural_image(32, 24);
  const auto result =
      apply_cycle_compressed(img, make_config(32, 24, 4, 4), kernels::BoxMeanKernel{});
  EXPECT_EQ(result.output.width(), 29u);
  EXPECT_EQ(result.output.height(), 21u);
  EXPECT_EQ(result.windows, 29u * 21u);
}

TEST(Apply, FloatKernelsPropagateOutputType) {
  const auto img = image::make_natural_image(24, 24);
  const kernels::GaussianKernel g(8, 1.5);
  const auto out = apply_traditional(img, 8, g);
  static_assert(std::is_same_v<std::decay_t<decltype(out.pixels()[0])>, float>);
  EXPECT_EQ(out.width(), 17u);
}

}  // namespace
}  // namespace swc::window

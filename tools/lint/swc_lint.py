#!/usr/bin/env python3
"""swc_lint: concurrency-invariant lints the compiler cannot express.

Three rules over src/ (see DESIGN.md "Concurrency contracts"):

  no-raw-mutex        std::mutex / std::condition_variable / std::lock_guard /
                      std::unique_lock / std::scoped_lock may appear only in
                      core/sync.hpp. Everything else goes through the
                      capability-annotated swc::Mutex wrappers, or clang's
                      thread-safety analysis has blind spots.

  metric-interning    telemetry::Registry::metric() interns a name under the
                      global name-table mutex. Call sites are restricted to
                      the idempotent memoized helpers (`*Ids::get()` with a
                      function-local static, or a registry-memoized backend
                      constructor) so interning never lands on a hot path and
                      ids stay process-stable.

  no-blocking-on-loop No function reachable from an SWC_REQUIRES(loop_role)
                      function in src/serve may block: wait_idle(), .join(),
                      or an engine submit with SubmitPolicy::Block would stall
                      the reactor that is supposed to be draining completions.

The default engine is textual (comment-stripped regex + a conservative
call-graph walk) so the lint runs anywhere python3 does. When clang-query is
installed, `--engine=clang-query` cross-checks the no-raw-mutex rule against
the AST via the exported compile database; it is a best-effort supplement,
never a requirement (the container toolchain has no clang frontend).

Exit status: 0 clean, 1 violations, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import shutil
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[2]
SRC = REPO / "src"

RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|condition_variable|lock_guard|unique_lock|scoped_lock)\b"
)
# The one file allowed to spell std::mutex: the capability wrapper itself.
RAW_SYNC_ALLOWED = {SRC / "core" / "sync.hpp"}

METRIC_CALL_RE = re.compile(r"\bRegistry::metric\s*\(")
# Context anchors, searched backwards from a Registry::metric( hit. The first
# anchor found decides: an allowed interning helper, or some other function.
ALLOWED_CONTEXT_RE = re.compile(
    r"\bget\(\)\s*(\{|const)?\s*$"  # `... const XIds& get() {` / `::get() {`
    r"|\b(\w+Backend)\s*\(\)"  # memoized backend constructor
    r"|MetricId\s+Registry::metric\s*\("  # the definition itself
)
FUNC_DEF_RE = re.compile(
    r"^[\w:\[\]<>&*~,\s]*\b[\w~]+(::[\w~]+)?\s*\([^;]*$"  # def header, no ';'
    r"|^[\w:\[\]<>&*~,\s]*\b[\w~]+(::[\w~]+)?\s*\([^;{}]*\)[^;]*\{"
)

LOOP_REQUIRES_RE = re.compile(r"SWC_REQUIRES\(\s*loop_role\s*\)")
BLOCKING_RES = [
    (re.compile(r"\bwait_idle\s*\("), "wait_idle() blocks on the engine barrier"),
    (re.compile(r"\.\s*join\s*\("), ".join() blocks on thread exit"),
    (re.compile(r"\bSubmitPolicy::Block\b"), "SubmitPolicy::Block blocks on the shard queue"),
]
CALLEE_RE = re.compile(r"\b([a-z_]\w*)\s*\(")
CPP_KEYWORDS = frozenset(
    "if while for switch return sizeof alignof catch do else new delete throw "
    "case default static_assert static_cast const_cast reinterpret_cast "
    "dynamic_cast decltype noexcept assert".split()
)
MAX_CALL_DEPTH = 6


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments and string literals, preserving line
    structure so reported line numbers stay true to the file."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != "\n" else "\n")
        i += 1
    return "".join(out)


def source_files() -> list[pathlib.Path]:
    return sorted(
        p for p in SRC.rglob("*") if p.suffix in (".hpp", ".cpp") and p.is_file()
    )


def lint_no_raw_mutex(violations: list[str]) -> None:
    for path in source_files():
        if path in RAW_SYNC_ALLOWED:
            continue
        code = strip_comments(path.read_text())
        for lineno, line in enumerate(code.splitlines(), 1):
            m = RAW_SYNC_RE.search(line)
            if m:
                violations.append(
                    f"{path.relative_to(REPO)}:{lineno}: [no-raw-mutex] "
                    f"std::{m.group(1)} outside core/sync.hpp — use the "
                    f"swc::Mutex/swc::CondVar capability wrappers"
                )


def lint_metric_interning(violations: list[str]) -> None:
    for path in source_files():
        code = strip_comments(path.read_text())
        lines = code.splitlines()
        for lineno, line in enumerate(lines, 1):
            if not METRIC_CALL_RE.search(line):
                continue
            if ALLOWED_CONTEXT_RE.search(line):
                continue  # the definition, or a one-line allowed context
            allowed = False
            anchored = False
            for back in range(lineno - 2, max(-1, lineno - 60), -1):
                prev = lines[back]
                if METRIC_CALL_RE.search(prev):
                    continue  # sibling entry of the same braced init list
                if ALLOWED_CONTEXT_RE.search(prev):
                    allowed = True
                    anchored = True
                    break
                if FUNC_DEF_RE.match(prev) and prev.strip():
                    anchored = True
                    break
            if not (anchored and allowed):
                violations.append(
                    f"{path.relative_to(REPO)}:{lineno}: [metric-interning] "
                    f"Registry::metric() outside an idempotent helper "
                    f"(*Ids::get() static or a memoized backend constructor)"
                )


def find_bodies(text: str, name: str) -> list[str]:
    """Best-effort bodies of every definition of `name` in comment-stripped
    source: a header mentioning `name(` with no ';' before the opening '{'."""
    bodies = []
    for m in re.finditer(rf"\b(?:\w+::)?{re.escape(name)}\s*\(", text):
        i = m.end() - 1
        depth = 0
        # Walk past the parameter list.
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        # Between ')' and '{' only specifiers/init-lists are legal for a
        # definition; a ';' first means declaration or plain call.
        j = i + 1
        while j < len(text) and text[j] not in ";{":
            j += 1
        if j >= len(text) or text[j] == ";":
            continue
        # Capture the brace-balanced body.
        k, depth = j, 0
        while k < len(text):
            if text[k] == "{":
                depth += 1
            elif text[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        bodies.append(text[j : k + 1])
    return bodies


def lint_no_blocking_on_loop(violations: list[str]) -> None:
    serve_files = [p for p in source_files() if (SRC / "serve") in p.parents]
    texts = {p: strip_comments(p.read_text()) for p in serve_files}
    corpus = "\n".join(texts.values())

    # Seed set: every function whose declaration carries REQUIRES(loop_role).
    loop_fns: set[str] = set()
    for text in texts.values():
        for m in LOOP_REQUIRES_RE.finditer(text):
            window = text[max(0, m.start() - 300) : m.start()]
            names = re.findall(r"\b([A-Za-z_]\w*)\s*\(", window)
            names = [n for n in names if n not in ("SWC_REQUIRES", "SWC_EXCLUDES")]
            if names:
                loop_fns.add(names[-1])

    if not loop_fns:
        return  # annotations stripped? nothing to check rather than a false fail

    # BFS over a textual call graph, bounded to functions defined in serve/.
    seen: set[str] = set()
    frontier = [(fn, fn, 0) for fn in sorted(loop_fns)]
    while frontier:
        fn, origin, depth = frontier.pop()
        if fn in seen or depth > MAX_CALL_DEPTH:
            continue
        seen.add(fn)
        for body in find_bodies(corpus, fn):
            for pattern, why in BLOCKING_RES:
                if pattern.search(body):
                    violations.append(
                        f"src/serve: [no-blocking-on-loop] {origin}() reaches "
                        f"{fn}() which blocks: {why}"
                    )
            for callee in set(CALLEE_RE.findall(body)) - CPP_KEYWORDS:
                if callee != fn:
                    frontier.append((callee, origin, depth + 1))


def run_clang_query(build_dir: pathlib.Path) -> int:
    """AST cross-check of no-raw-mutex (supplemental; requires clang-query)."""
    clang_query = shutil.which("clang-query")
    if clang_query is None:
        print("swc_lint: clang-query not found; textual engine already ran", file=sys.stderr)
        return 0
    matcher = (
        'match varDecl(hasType(cxxRecordDecl(hasName("::std::mutex"))),'
        "isExpansionInMainFile())"
    )
    cpps = [str(p) for p in source_files() if p.suffix == ".cpp"]
    proc = subprocess.run(
        [clang_query, "-p", str(build_dir), "-c", matcher, *cpps],
        capture_output=True,
        text=True,
        check=False,
    )
    hits = [
        line
        for line in proc.stdout.splitlines()
        if line.strip().endswith("matches.") and not line.strip().startswith("0 ")
    ]
    for line in hits:
        print(f"clang-query: {line}", file=sys.stderr)
    return 1 if hits else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--engine",
        choices=("text", "clang-query"),
        default="text",
        help="clang-query adds an AST cross-check when the binary exists",
    )
    parser.add_argument(
        "--build-dir",
        type=pathlib.Path,
        default=REPO / "build",
        help="build tree holding compile_commands.json (clang-query engine)",
    )
    args = parser.parse_args()

    if not SRC.is_dir():
        print(f"swc_lint: no src/ under {REPO}", file=sys.stderr)
        return 2

    violations: list[str] = []
    lint_no_raw_mutex(violations)
    lint_metric_interning(violations)
    lint_no_blocking_on_loop(violations)

    status = 0
    if violations:
        for v in violations:
            print(v)
        print(f"swc_lint: {len(violations)} violation(s)", file=sys.stderr)
        status = 1
    else:
        print("swc_lint: clean (no-raw-mutex, metric-interning, no-blocking-on-loop)")

    if args.engine == "clang-query":
        status = max(status, run_clang_query(args.build_dir))
    return status


if __name__ == "__main__":
    sys.exit(main())

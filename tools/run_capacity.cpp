// Offline capacity planner: how many compressed sliding-window pipelines of
// a given geometry fit one FPGA part, and which resource class binds first.
// Runs the exact arithmetic the serve layer uses for cost-based admission
// (resources::Composition), so its answer IS the server's admission limit
// for homogeneous sessions.
//
//   $ run_capacity --device XC7Z020 --window 31 --frame 1920x1080
//   $ run_capacity --device XC7Z045 --window 64 --frame 3840x2160 --threshold 2
//
// Odd window sizes are rounded up to the next even value (the architecture
// processes 2x2 Haar blocks, paper Section III).

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "hw/pipeline_spec.hpp"
#include "resources/composition.hpp"
#include "resources/device.hpp"

namespace {

const char* arg_string(int argc, char** argv, const char* name, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

long arg_value(int argc, char** argv, const char* name, long fallback) {
  const char* text = arg_string(argc, argv, name, nullptr);
  return text != nullptr ? std::atol(text) : fallback;
}

bool parse_frame(const char* text, std::size_t& width, std::size_t& height) {
  char* end = nullptr;
  const long w = std::strtol(text, &end, 10);
  if (end == text || *end != 'x') return false;
  const char* rest = end + 1;
  const long h = std::strtol(rest, &end, 10);
  if (end == rest || *end != '\0') return false;
  if (w <= 0 || h <= 0) return false;
  width = static_cast<std::size_t>(w);
  height = static_cast<std::size_t>(h);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swc;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: run_capacity [--device NAME] [--window N] [--frame WxH]\n"
          "                    [--threshold T] [--backend NAME] [--all-devices]\n"
          "  --device   target part (default XC7Z020; see --all-devices)\n"
          "  --window   sliding-window size N (odd values round up to even)\n"
          "  --frame    image geometry, e.g. 1920x1080 (default 512x512)\n"
          "  --all-devices  print the capacity row for every known part\n");
      return 0;
    }
  }

  hw::PipelineSpec spec;
  spec.geometry.image_width = 512;
  spec.geometry.image_height = 512;
  if (const char* frame = arg_string(argc, argv, "--frame", nullptr)) {
    if (!parse_frame(frame, spec.geometry.image_width, spec.geometry.image_height)) {
      std::fprintf(stderr, "run_capacity: bad --frame %s (want WxH)\n", frame);
      return 2;
    }
  }
  // Frame widths must be even for column-pair streaming; like odd windows,
  // round up rather than refuse (planning wants an answer, not an error).
  if (spec.geometry.image_width % 2 != 0) ++spec.geometry.image_width;

  long window = arg_value(argc, argv, "--window", 8);
  if (window < 2) window = 2;
  if (window % 2 != 0) {
    std::printf("note: window %ld rounded up to %ld (2x2 Haar blocks need even N)\n", window,
                window + 1);
    ++window;
  }
  spec.geometry.window = static_cast<std::size_t>(window);
  spec.threshold = static_cast<int>(arg_value(argc, argv, "--threshold", 0));
  spec.backend = arg_string(argc, argv, "--backend", "haar");

  const resources::Device* device = &resources::kXC7Z020;
  if (const char* name = arg_string(argc, argv, "--device", nullptr)) {
    device = resources::device_by_name(name);
    if (device == nullptr) {
      std::fprintf(stderr, "run_capacity: unknown --device %s (known:", name);
      for (const auto& known : resources::kDeviceTable) std::fprintf(stderr, " %s", known.name);
      std::fprintf(stderr, ")\n");
      return 2;
    }
  }

  try {
    spec.validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run_capacity: %s\n", e.what());
    return 2;
  }

  const resources::ResourceEstimate one = resources::estimate_overall_for(spec);
  std::printf("pipeline: window %zu, frame %zux%zu, backend %s, threshold %d\n",
              spec.geometry.window, spec.geometry.image_width, spec.geometry.image_height,
              spec.backend.c_str(), spec.threshold);
  std::printf("  per-pipeline cost: %zu luts, %zu registers, %zu bram18k, fmax %.1f MHz\n",
              one.luts, one.registers, one.bram18k, one.fmax_mhz);

  bool all_devices = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--all-devices") == 0) all_devices = true;
  }

  const auto report = [&](const resources::Device& dev) {
    const std::size_t streams = resources::Composition::capacity(spec, dev);
    std::printf("%-8s: %zu stream%s", dev.name, streams, streams == 1 ? "" : "s");
    if (streams == 0) {
      std::printf("  (a single pipeline exceeds the part)\n");
      return;
    }
    resources::Composition design;
    for (std::size_t k = 0; k < streams; ++k) (void)design.add(spec);
    const auto fit = design.fit(dev);
    const auto cost = design.cost();
    const auto timing = cost.member_timing(0);
    std::printf("  binding %s, headroom %.1f%%  (%zu/%zu luts, %zu/%zu bram18k, "
                "%.1f fps/stream)\n",
                resources::constraint_name(fit.binding_constraint), 100.0 * fit.headroom,
                cost.luts, dev.luts, cost.bram18k, dev.bram18k, timing.fps);
  };

  if (all_devices) {
    for (const auto& dev : resources::kDeviceTable) report(dev);
  } else {
    report(*device);
  }
  return 0;
}
